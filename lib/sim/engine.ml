open Effect
open Effect.Deep

(* A process group: every process carries an optional group tag,
   inherited by everything it spawns and by its own re-schedulings.
   Killing a group discards all of its pending events at pop time, so a
   whole subsystem (e.g. a simulated node) can be torn down atomically
   at a point in virtual time — the fault-injection "kill switch". *)
type group = { gname : string; mutable killed : bool }

(* What an event does when it fires.  The overwhelmingly common case —
   resuming a parked process — carries the continuation and its value
   directly as an unboxed-field variant instead of a closure, so a
   sleep/yield/wake costs one small block rather than a closure that
   captures the continuation plus a record pointing at it.  [Fn]
   remains for the cold cases (process start, timeout guards) where
   real code must run. *)
type payload =
  | Fn of (unit -> unit)
  | Resume : ('a, unit) continuation * 'a -> payload

type event = { name : string; group : group option; payload : payload }

type t = {
  mutable now : Time.t;
  mutable seq : int;
  mutable events : event Heap.t;
  mutable stopped : bool;
  mutable current_name : string;
  mutable current_group : group option;
  mutable live : int;
  mutable executed : int;
  rng : Rng.t;
  (* Engine-local storage (see {!Local}): how process-global hooks
     (fault injection, observers, counters) become per-shard state in
     sharded runs without any cross-domain sharing. *)
  locals : (int, Obj.t) Hashtbl.t;
}

(* The engine currently executing on this domain, set for the duration
   of [run]/[run_until].  Domain-local, so every shard of a parallel
   window sees its own engine.  This is deliberately not an effect:
   it must also be readable from [exec_event]-adjacent code running
   outside the effect handler (e.g. wakers). *)
let current_slot : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () = !(Domain.DLS.get current_slot)

let with_current t f =
  let slot = Domain.DLS.get current_slot in
  let prev = !slot in
  slot := Some t;
  Fun.protect ~finally:(fun () -> slot := prev) f

module Local = struct
  (* Typed keys into an engine's [locals] table, in the style of
     [Domain.DLS]: the key is just an int; type safety comes from the
     phantom parameter being fixed at [key ()] time and the table being
     written only through [set]. *)
  type 'a key = int

  let next_key = Atomic.make 0
  let key () = Atomic.fetch_and_add next_key 1

  let get (t : t) (k : 'a key) : 'a option =
    match Hashtbl.find_opt t.locals k with
    | Some v -> Some (Obj.obj v)
    | None -> None

  let set (t : t) (k : 'a key) (v : 'a) = Hashtbl.replace t.locals k (Obj.repr v)
  let remove (t : t) (k : 'a key) = Hashtbl.remove t.locals k
end

(* Process-wide tally across every engine, for wall-clock throughput
   reporting (events per real second) in the bench harness.  Atomic:
   engines on different domains (sharded runs, parallel bench tasks)
   all bump it. *)
let total_executed = Atomic.make 0

(* ---- per-event-kind wall-clock profile (bench-only; off by default) *)

type prof_cell = {
  mutable p_count : int;
  mutable p_secs : float;
  mutable p_words : float; (* minor words allocated inside the events *)
}

let prof_table : (string, prof_cell) Hashtbl.t = Hashtbl.create 64
let prof_enabled = ref false

(* Profiling is bench-only, so a plain mutex around the table is fine
   even when shards on several domains record concurrently. *)
let prof_mu = Mutex.create ()

(* The sim library takes no unix dependency: the harness installs a
   real-time clock ([Unix.gettimeofday]); the default is CPU time. *)
let prof_clock = ref Sys.time
let profile_set_clock f = prof_clock := f
let profile_enable b = prof_enabled := b
let profile_reset () = Mutex.protect prof_mu (fun () -> Hashtbl.reset prof_table)

(* Bucket key: the event name with digit runs removed, so per-instance
   names ("bench.client12", "nicfs1.worker3") collapse into kinds. *)
let prof_key name =
  let n = String.length name in
  let b = Bytes.create n in
  let j = ref 0 in
  for i = 0 to n - 1 do
    let c = String.unsafe_get name i in
    if not (c >= '0' && c <= '9') then begin
      Bytes.unsafe_set b !j c;
      incr j
    end
  done;
  Bytes.sub_string b 0 !j

let prof_record name secs words =
  let key = prof_key name in
  Mutex.protect prof_mu (fun () ->
      match Hashtbl.find_opt prof_table key with
      | Some c ->
          c.p_count <- c.p_count + 1;
          c.p_secs <- c.p_secs +. secs;
          c.p_words <- c.p_words +. words
      | None ->
          Hashtbl.add prof_table key
            { p_count = 1; p_secs = secs; p_words = words })

(* (kind, count, seconds, minor words), hottest first. *)
let profile_snapshot () =
  Mutex.protect prof_mu (fun () ->
      Hashtbl.fold
        (fun k c acc -> (k, c.p_count, c.p_secs, c.p_words) :: acc)
        prof_table [])
  |> List.sort (fun (_, _, a, _) (_, _, b, _) -> compare b a)

exception Process_failure of string * exn
exception Not_in_process

let () =
  Printexc.register_printer (function
    | Process_failure (name, e) ->
        Some
          (Printf.sprintf "Process_failure(%S, %s)" name (Printexc.to_string e))
    | _ -> None)

let create ?(seed = 42) () =
  {
    now = 0;
    seq = 0;
    events = Heap.create ();
    stopped = false;
    current_name = "<none>";
    current_group = None;
    live = 0;
    executed = 0;
    rng = Rng.create seed;
    locals = Hashtbl.create 8;
  }

let rng t = t.rng
let current_time t = t.now
let events_executed t = t.executed
let global_events_executed () = Atomic.get total_executed

let make_group name = { gname = name; killed = false }
let kill g = g.killed <- true
let group_killed g = g.killed
let group_name g = g.gname

(* [group] is taken verbatim: [None] means "no group", not "inherit".
   Inheritance decisions happen at the effect handlers, which capture
   the performer's group at suspension time — a later fallback to
   [t.current_group] here would run in the *waker's* context and tag a
   groupless process's resumption with whatever group happened to wake
   it (and a subsequent kill of that group would then drop an innocent
   bystander's continuation). *)
let schedule_payload ?group t ~at ~name payload =
  let at = if at < t.now then t.now else at in
  t.seq <- t.seq + 1;
  Heap.push t.events ~key:at ~seq:t.seq { name; group; payload }

let schedule ?group t ~at ~name fn =
  schedule_payload ?group t ~at ~name (Fn fn)

(* Effects performed by processes; each engine installs a deep handler
   around every process it runs, so the handler below closes over [t]. *)
type _ Effect.t +=
  | Now : Time.t Effect.t
  | Sleep : Time.t -> unit Effect.t
  | Yield : unit Effect.t
  | Spawn : string * group option * (unit -> unit) -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t
  | Suspend_timeout :
      (('a -> unit) -> unit) * Time.t
      -> 'a option Effect.t
  | Name : string Effect.t

let rec run_process t name f =
  t.live <- t.live + 1;
  match_with f ()
    {
      retc = (fun () -> t.live <- t.live - 1);
      exnc =
        (fun e ->
          t.live <- t.live - 1;
          match e with
          | Process_failure _ -> raise e
          | e -> raise (Process_failure (name, e)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Now -> Some (fun (k : (a, _) continuation) -> continue k t.now)
          | Name -> Some (fun k -> continue k name)
          | Sleep d ->
              Some
                (fun k ->
                  (* Capture the performer's group: resumptions must stay
                     in it even when scheduled from another process. *)
                  let g = t.current_group in
                  schedule_payload ?group:g t ~at:(t.now + d) ~name
                    (Resume (k, ())))
          | Yield ->
              Some
                (fun k ->
                  let g = t.current_group in
                  schedule_payload ?group:g t ~at:t.now ~name (Resume (k, ())))
          | Spawn (child_name, child_group, g) ->
              Some
                (fun k ->
                  let grp =
                    match child_group with
                    | Some _ as cg -> cg
                    | None -> t.current_group
                  in
                  schedule ?group:grp t ~at:t.now ~name:child_name (fun () ->
                      run_process t child_name g);
                  continue k ())
          | Suspend register ->
              Some
                (fun k ->
                  let g = t.current_group in
                  let fired = ref false in
                  let waker v =
                    if not !fired then begin
                      fired := true;
                      schedule_payload ?group:g t ~at:t.now ~name
                        (Resume (k, v))
                    end
                  in
                  register waker)
          | Suspend_timeout (register, timeout) ->
              Some
                (fun k ->
                  let g = t.current_group in
                  let fired = ref false in
                  let waker v =
                    if not !fired then begin
                      fired := true;
                      schedule_payload ?group:g t ~at:t.now ~name
                        (Resume (k, Some v))
                    end
                  in
                  register waker;
                  (* The timeout guard must test [fired] when it runs,
                     not when it is scheduled, so it stays a closure. *)
                  schedule ?group:g t ~at:(t.now + timeout) ~name (fun () ->
                      if not !fired then begin
                        fired := true;
                        continue k None
                      end))
          | _ -> None);
    }

let spawn_root ?(name = "root") ?group t f =
  schedule ?group t ~at:t.now ~name (fun () -> run_process t name f)

(* Root spawn at an explicit future timestamp: how the sharded runner
   injects cross-shard deliveries into a destination engine between
   windows. *)
let spawn_root_at ?(name = "root") ?group t ~at f =
  schedule ?group t ~at ~name (fun () -> run_process t name f)

let run_payload = function Fn f -> f () | Resume (k, v) -> continue k v

let exec_event t time ev =
  match ev.group with
  | Some g when g.killed ->
      (* The owning group was torn down: the continuation is
         dropped, never resumed. *)
      ()
  | _ ->
      if time > t.now then t.now <- time;
      t.current_name <- ev.name;
      t.current_group <- ev.group;
      t.executed <- t.executed + 1;
      Atomic.incr total_executed;
      if !prof_enabled then begin
        let w0 = Gc.minor_words () in
        let t0 = !prof_clock () in
        run_payload ev.payload;
        prof_record ev.name
          (!prof_clock () -. t0)
          (Gc.minor_words () -. w0)
      end
      else run_payload ev.payload

let run ?deadline t =
  with_current t @@ fun () ->
  t.stopped <- false;
  let running = ref true in
  while !running && not t.stopped do
    if Heap.is_empty t.events then running := false
    else begin
      let time = Heap.top_key t.events in
      match deadline with
      | Some d when time > d ->
          t.now <- d;
          t.events <- Heap.create ();
          running := false
      | _ -> exec_event t time (Heap.pop_top t.events)
    end
  done

(* Bounded drain for the sharded runner: execute every event strictly
   below [bound], leave the rest queued.  Returns the timestamp of the
   next pending event (the shard's contribution to the next global
   synchronization bound). *)
let run_until t ~bound =
  with_current t @@ fun () ->
  t.stopped <- false;
  let running = ref true in
  while !running && not t.stopped do
    if Heap.is_empty t.events then running := false
    else begin
      let time = Heap.top_key t.events in
      if time < bound then exec_event t time (Heap.pop_top t.events)
      else running := false
    end
  done;
  Heap.peek_key t.events

(* Like [run_until] but the bound is read through a reference before
   every event, so code executed by the events themselves may tighten
   it mid-window.  The sharded runner uses this for its adaptive
   horizon: a shard that has sent nothing this window runs unbounded
   by its own echo, and its first cross-shard send drops the bound to
   the earliest instant a consequence of that send could return.
   Execution is time-ordered, so every event already executed when the
   bound drops is at or before the send time — never beyond the new
   bound.  [deadline] behaves as in [run]: when the next event would
   pass it, pending events are discarded and the clock is clamped. *)
let run_until_dyn ?deadline t ~bound =
  with_current t @@ fun () ->
  t.stopped <- false;
  let running = ref true in
  while !running && not t.stopped do
    if Heap.is_empty t.events then running := false
    else begin
      let time = Heap.top_key t.events in
      if time >= !bound then running := false
      else
        match deadline with
        | Some d when time > d ->
            t.now <- d;
            t.events <- Heap.create ();
            running := false
        | _ -> exec_event t time (Heap.pop_top t.events)
    end
  done;
  Heap.peek_key t.events

let next_event_time t = Heap.peek_key t.events

let fast_forward t ~upto =
  let upto =
    match Heap.peek_key t.events with
    | Some ts -> min upto ts
    | None -> upto
  in
  if upto > t.now then t.now <- upto

let stop t = t.stopped <- true

let wrap_unhandled f =
  try f () with Effect.Unhandled _ -> raise Not_in_process

let now () = wrap_unhandled (fun () -> perform Now)
let sleep d = wrap_unhandled (fun () -> perform (Sleep d))
let yield () = wrap_unhandled (fun () -> perform Yield)

let spawn ?(name = "proc") ?group f =
  wrap_unhandled (fun () -> perform (Spawn (name, group, f)))

let suspend register = wrap_unhandled (fun () -> perform (Suspend register))

let suspend_cancellable register ~timeout =
  wrap_unhandled (fun () -> perform (Suspend_timeout (register, timeout)))

let process_name () = wrap_unhandled (fun () -> perform Name)
