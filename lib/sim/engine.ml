open Effect
open Effect.Deep

(* A process group: every process carries an optional group tag,
   inherited by everything it spawns and by its own re-schedulings.
   Killing a group discards all of its pending events at pop time, so a
   whole subsystem (e.g. a simulated node) can be torn down atomically
   at a point in virtual time — the fault-injection "kill switch". *)
type group = { gname : string; mutable killed : bool }

type event = { name : string; group : group option; fn : unit -> unit }

type t = {
  mutable now : Time.t;
  mutable seq : int;
  mutable events : event Heap.t;
  mutable stopped : bool;
  mutable current_name : string;
  mutable current_group : group option;
  mutable live : int;
  mutable executed : int;
  rng : Rng.t;
}

(* Process-wide tally across every engine, for wall-clock throughput
   reporting (events per real second) in the bench harness. *)
let total_executed = ref 0

exception Process_failure of string * exn
exception Not_in_process

let () =
  Printexc.register_printer (function
    | Process_failure (name, e) ->
        Some
          (Printf.sprintf "Process_failure(%S, %s)" name (Printexc.to_string e))
    | _ -> None)

let create ?(seed = 42) () =
  {
    now = 0;
    seq = 0;
    events = Heap.create ();
    stopped = false;
    current_name = "<none>";
    current_group = None;
    live = 0;
    executed = 0;
    rng = Rng.create seed;
  }

let rng t = t.rng
let current_time t = t.now
let events_executed t = t.executed
let global_events_executed () = !total_executed

let make_group name = { gname = name; killed = false }
let kill g = g.killed <- true
let group_killed g = g.killed
let group_name g = g.gname

(* [group] is taken verbatim: [None] means "no group", not "inherit".
   Inheritance decisions happen at the effect handlers, which capture
   the performer's group at suspension time — a later fallback to
   [t.current_group] here would run in the *waker's* context and tag a
   groupless process's resumption with whatever group happened to wake
   it (and a subsequent kill of that group would then drop an innocent
   bystander's continuation). *)
let schedule ?group t ~at ~name fn =
  let at = if at < t.now then t.now else at in
  t.seq <- t.seq + 1;
  Heap.push t.events ~key:at ~seq:t.seq { name; group; fn }

(* Effects performed by processes; each engine installs a deep handler
   around every process it runs, so the handler below closes over [t]. *)
type _ Effect.t +=
  | Now : Time.t Effect.t
  | Sleep : Time.t -> unit Effect.t
  | Yield : unit Effect.t
  | Spawn : string * group option * (unit -> unit) -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t
  | Suspend_timeout :
      (('a -> unit) -> unit) * Time.t
      -> 'a option Effect.t
  | Name : string Effect.t

let rec run_process t name f =
  t.live <- t.live + 1;
  match_with f ()
    {
      retc = (fun () -> t.live <- t.live - 1);
      exnc =
        (fun e ->
          t.live <- t.live - 1;
          match e with
          | Process_failure _ -> raise e
          | e -> raise (Process_failure (name, e)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Now -> Some (fun (k : (a, _) continuation) -> continue k t.now)
          | Name -> Some (fun k -> continue k name)
          | Sleep d ->
              Some
                (fun k ->
                  (* Capture the performer's group: resumptions must stay
                     in it even when scheduled from another process. *)
                  let g = t.current_group in
                  schedule ?group:g t ~at:(t.now + d) ~name (fun () ->
                      continue k ()))
          | Yield ->
              Some
                (fun k ->
                  let g = t.current_group in
                  schedule ?group:g t ~at:t.now ~name (fun () -> continue k ()))
          | Spawn (child_name, child_group, g) ->
              Some
                (fun k ->
                  let grp =
                    match child_group with
                    | Some _ as cg -> cg
                    | None -> t.current_group
                  in
                  schedule ?group:grp t ~at:t.now ~name:child_name (fun () ->
                      run_process t child_name g);
                  continue k ())
          | Suspend register ->
              Some
                (fun k ->
                  let g = t.current_group in
                  let fired = ref false in
                  let waker v =
                    if not !fired then begin
                      fired := true;
                      schedule ?group:g t ~at:t.now ~name (fun () ->
                          continue k v)
                    end
                  in
                  register waker)
          | Suspend_timeout (register, timeout) ->
              Some
                (fun k ->
                  let g = t.current_group in
                  let fired = ref false in
                  let waker v =
                    if not !fired then begin
                      fired := true;
                      schedule ?group:g t ~at:t.now ~name (fun () ->
                          continue k (Some v))
                    end
                  in
                  register waker;
                  schedule ?group:g t ~at:(t.now + timeout) ~name (fun () ->
                      if not !fired then begin
                        fired := true;
                        continue k None
                      end))
          | _ -> None);
    }

let spawn_root ?(name = "root") ?group t f =
  schedule ?group t ~at:t.now ~name (fun () -> run_process t name f)

let run ?deadline t =
  t.stopped <- false;
  let running = ref true in
  while !running && not t.stopped do
    match Heap.pop t.events with
    | None -> running := false
    | Some (time, _seq, ev) -> (
        match deadline with
        | Some d when time > d ->
            t.now <- d;
            t.events <- Heap.create ();
            running := false
        | _ -> (
            match ev.group with
            | Some g when g.killed ->
                (* The owning group was torn down: the continuation is
                   dropped, never resumed. *)
                ()
            | _ ->
                if time > t.now then t.now <- time;
                t.current_name <- ev.name;
                t.current_group <- ev.group;
                t.executed <- t.executed + 1;
                incr total_executed;
                ev.fn ()))
  done

let stop t = t.stopped <- true

let wrap_unhandled f =
  try f () with Effect.Unhandled _ -> raise Not_in_process

let now () = wrap_unhandled (fun () -> perform Now)
let sleep d = wrap_unhandled (fun () -> perform (Sleep d))
let yield () = wrap_unhandled (fun () -> perform Yield)

let spawn ?(name = "proc") ?group f =
  wrap_unhandled (fun () -> perform (Spawn (name, group, f)))

let suspend register = wrap_unhandled (fun () -> perform (Suspend register))

let suspend_cancellable register ~timeout =
  wrap_unhandled (fun () -> perform (Suspend_timeout (register, timeout)))

let process_name () = wrap_unhandled (fun () -> perform Name)
