(** Conservative parallel runner: multiple {!Engine} instances (shards)
    advancing in lookahead-bounded windows, optionally spread over
    several domains.

    Shards interact only through edges declared with {!connect}; a
    cross-shard message ({!send}) is delivered at least {!lookahead}
    after its send time.  That minimum latency is what makes the runner
    conservative in the Chandy–Misra–Bryant sense: shard [j] may safely
    execute every event below
    [min over incoming edges (src i) of (next_i + lookahead)]
    because nothing an upstream shard has yet to do can produce an
    earlier delivery.  No rollback, ever.

    {b Determinism contract.}  For a fixed [(seed, shard count, edge
    set, process behaviour)], results are identical for {e every} value
    of [?domains] — the domain count affects which OS threads execute a
    window, never what the window computes.  Cross-shard messages are
    injected between windows in the canonical order (delivery time,
    src, dst, per-edge sequence).

    {b Sharing discipline.}  Processes on different shards must not
    share simulation state (mailboxes, ivars, bandwidth meters …);
    everything cross-shard goes through {!send}.  Process-global fault
    hooks ([Inject], lease observers) are not domain-safe: run
    fault-injection scenarios with [domains = 1]. *)

type t

val create :
  ?lookahead:Time.t -> ?seed:int -> ?seed_of:(int -> int) -> shards:int ->
  unit -> t
(** [create ~shards ()] builds [shards] engines with deterministic
    per-shard RNG seeds derived from [seed] ([seed_of] overrides the
    derivation per shard index).  [lookahead] is the minimum
    cross-shard delivery latency (default, and floor, one tick). *)

val shard_count : t -> int

val engine : t -> int -> Engine.t
(** The shard's private engine: spawn processes on it, read its clock.
    Do not call its [run] directly — {!run} owns scheduling. *)

val lookahead : t -> Time.t

val connect : t -> src:int -> dst:int -> unit
(** Declare the directed edge [src -> dst].  Idempotent.  Only declared
    edges may carry messages, and only declared edges constrain the
    destination's execution window. *)

val spawn_root : ?name:string -> t -> shard:int -> (unit -> unit) -> unit
(** Spawn a root process on the given shard (before or between runs). *)

val send :
  t -> src:int -> dst:int -> ?delay:Time.t -> name:string ->
  (unit -> unit) -> unit
(** [send t ~src ~dst ~name fn] — called while shard [src] executes —
    schedules [fn] as a root process on shard [dst] at
    [now src + max delay lookahead].  @raise Invalid_argument if the
    edge was never {!connect}ed. *)

val run : ?domains:int -> t -> unit
(** Drive every shard to completion.  [domains] (default 1, clamped to
    the shard count) is the number of OS domains executing each window;
    see the determinism contract above. *)

val windows_run : t -> int
(** Number of synchronization windows executed so far (diagnostics). *)
