(** Conservative parallel runner: multiple {!Engine} instances (shards)
    advancing in lookahead-bounded windows, optionally spread over
    several domains.

    Shards interact only through edges declared with {!connect}; a
    cross-shard message ({!send}) is delivered at least the edge's
    lookahead after its send time.  That minimum latency is what makes
    the runner conservative in the Chandy–Misra–Bryant sense: a shard
    only executes events that nothing another shard has yet to do could
    invalidate.  No rollback, ever.

    Shard [j]'s window bound combines a {e static} horizon — the
    earliest instant any other busy shard could cause a delivery at
    [j], over all-pairs shortest-path lookahead distances — with an
    {e adaptive} one: until [j] sends something cross-shard, no echo of
    its own output exists, so it runs unbounded by itself; its first
    send at delivery time [a] on edge [j -> k] closes the horizon at
    [a + dist k j].  Barriers therefore track cross-shard traffic, not
    elapsed virtual time over the lookahead.

    Lookahead is heterogeneous: each edge may carry its own bound
    (e.g. the physical fabric latency of the link it models), so one
    low-latency edge narrows only its own destination's windows.

    {b Determinism contract.}  For a fixed [(seed, shard count, edge
    set, process behaviour)], results are identical for {e every} value
    of [?domains] — the domain count affects which OS threads execute a
    window, never what the window computes.  Cross-shard messages are
    injected between windows in the canonical order (delivery time,
    src, dst, per-edge sequence).  Every window bound above is a
    function of engine states and the static edge set alone, so the
    window structure itself is also identical at every domain count.

    {b Sharing discipline.}  Processes on different shards must not
    share simulation state (mailboxes, ivars, bandwidth meters …);
    everything cross-shard goes through {!send}.  Formerly
    process-global hooks (the fault-injection hook, lease and oplog
    observers, robustness counters) are {!Engine.Local} engine-local:
    installed from inside a shard's process they bind to that shard
    only, so independent fault-injection scenarios may run as parallel
    shards.  One {e deployment} under fault injection still spans a
    single shard: the injection hook is per-engine, not per-edge. *)

type t

val create :
  ?lookahead:Time.t -> ?seed:int -> ?seed_of:(int -> int) -> shards:int ->
  unit -> t
(** [create ~shards ()] builds [shards] engines with deterministic
    per-shard RNG seeds derived from [seed] ([seed_of] overrides the
    derivation per shard index).  [lookahead] is the default minimum
    cross-shard delivery latency for edges that do not override it
    (default, and floor, one tick). *)

val shard_count : t -> int

val engine : t -> int -> Engine.t
(** The shard's private engine: spawn processes on it, read its clock.
    Do not call its [run] directly while {!run} drives scheduling;
    running boot events to a bound {e before} {!run} (construction at
    [t = 0]) is fine. *)

val lookahead : t -> Time.t

val connect : ?lookahead:Time.t -> t -> src:int -> dst:int -> unit
(** Declare the directed edge [src -> dst].  Idempotent (the first
    declaration's lookahead wins).  [lookahead] overrides the runner
    default for this edge (floored at one tick).  Only declared edges
    may carry messages, and only declared edges constrain the
    destination's execution window. *)

val spawn_root : ?name:string -> t -> shard:int -> (unit -> unit) -> unit
(** Spawn a root process on the given shard (before or between runs). *)

val send :
  t -> src:int -> dst:int -> ?delay:Time.t -> name:string ->
  (unit -> unit) -> unit
(** [send t ~src ~dst ~name fn] — called while shard [src] executes —
    schedules [fn] as a root process on shard [dst] at
    [now src + max delay (lookahead of the edge)].  Same-window
    messages on one edge coalesce into a single reusable buffer
    drained at the next barrier; the send may also tighten the calling
    shard's window bound (see the adaptive horizon above).
    @raise Invalid_argument if the edge was never {!connect}ed. *)

val run :
  ?domains:int -> ?deadline:Time.t -> ?keep_going:bool -> ?grain:int ->
  t -> unit
(** Drive every shard to completion.  [domains] (default 1, clamped to
    the shard count) is the number of OS domains available to execute
    windows; see the determinism contract above.  Worker domains are
    created lazily on the first window that engages them and persist
    for the whole run.

    [grain] (events, default 96) is the inline threshold: a window
    whose predicted work — exponential moving averages of events per
    window and of wall seconds per window (see {!set_clock}) — would
    not amortize a barrier crossing runs on the coordinator without
    waking any worker.  On a host reporting a single core
    ([Domain.recommended_domain_count () = 1]) the pool is never
    engaged, whatever [domains] says.  [grain <= 0] forces every
    multi-shard window onto the pool — a test hook for the barrier
    path.  The prediction influences scheduling only, never results.

    [deadline] bounds every shard's clock exactly like
    [Engine.run ~deadline]: events past it are discarded and the
    shard's clock is left at the deadline.

    A shard whose window raises is marked dead: it executes nothing
    further, stops constraining its downstream shards, and its
    exception is recorded in {!errors}.  Unless [keep_going] is set
    (default false), the first such exception (lowest shard index) is
    re-raised after all remaining shards finish. *)

val errors : t -> (int * exn) list
(** Shards that died during the last {!run}, sorted by shard index.
    Empty on a clean run. *)

val windows_run : t -> int
(** Number of synchronization windows executed so far (diagnostics). *)

(** {1 Cross-shard sync observability} *)

type stats = {
  windows : int;  (** synchronization windows executed *)
  parallel_windows : int;  (** windows that engaged the worker pool *)
  barrier_waits : int;
      (** coordinator condition-variable waits at round barriers *)
  fast_forwards : int;
      (** idle-shard clock ratchets (the null messages) *)
  messages : int;  (** cross-shard messages drained *)
  batch_max : int;  (** largest single-barrier coalesced batch *)
  extended_horizons : int;
      (** busy-shard windows run beyond every static promise (adaptive
          horizon in effect) *)
}

val stats : t -> stats
(** Cumulative over the runner's lifetime.  [windows], [fast_forwards],
    [messages], [batch_max] and [extended_horizons] are identical at
    every domain count; [parallel_windows] and [barrier_waits] depend
    on [?domains], [?grain] and the machine. *)

val edge_messages : t -> ((int * int) * int) list
(** Lifetime messages per (src, dst) edge, sorted; edges that never
    carried a message are omitted. *)

val counters_record : t -> unit
(** Record the domain-layout-independent subset of {!stats}
    ([sharded.windows], [sharded.fast-forward], [sharded.messages],
    [sharded.horizon-extended]) into the global {!Counters} table.
    Explicit opt-in for harnesses; never called by {!run} itself, so
    fingerprint tests comparing sharded and unsharded counter totals
    are unaffected. *)

val set_clock : (unit -> float) -> unit
(** Install the wall clock used by the inline-vs-parallel policy
    (e.g. [Unix.gettimeofday]); the default is [Sys.time].  The sim
    library itself takes no unix dependency. *)
