(** Conservative parallel runner: multiple {!Engine} instances (shards)
    advancing in lookahead-bounded windows, optionally spread over
    several domains.

    Shards interact only through edges declared with {!connect}; a
    cross-shard message ({!send}) is delivered at least the edge's
    lookahead after its send time.  That minimum latency is what makes
    the runner conservative in the Chandy–Misra–Bryant sense: shard [j]
    may safely execute every event below
    [min over incoming edges e = (i -> j) of (next_i + lookahead e)]
    because nothing an upstream shard has yet to do can produce an
    earlier delivery.  No rollback, ever.

    Lookahead is heterogeneous: each edge may carry its own bound
    (e.g. the physical fabric latency of the link it models), so one
    low-latency edge narrows only its own destination's windows.

    {b Determinism contract.}  For a fixed [(seed, shard count, edge
    set, process behaviour)], results are identical for {e every} value
    of [?domains] — the domain count affects which OS threads execute a
    window, never what the window computes.  Cross-shard messages are
    injected between windows in the canonical order (delivery time,
    src, dst, per-edge sequence).

    {b Sharing discipline.}  Processes on different shards must not
    share simulation state (mailboxes, ivars, bandwidth meters …);
    everything cross-shard goes through {!send}.  Formerly
    process-global hooks (the fault-injection hook, lease and oplog
    observers, robustness counters) are {!Engine.Local} engine-local:
    installed from inside a shard's process they bind to that shard
    only, so independent fault-injection scenarios may run as parallel
    shards.  One {e deployment} under fault injection still spans a
    single shard: the injection hook is per-engine, not per-edge. *)

type t

val create :
  ?lookahead:Time.t -> ?seed:int -> ?seed_of:(int -> int) -> shards:int ->
  unit -> t
(** [create ~shards ()] builds [shards] engines with deterministic
    per-shard RNG seeds derived from [seed] ([seed_of] overrides the
    derivation per shard index).  [lookahead] is the default minimum
    cross-shard delivery latency for edges that do not override it
    (default, and floor, one tick). *)

val shard_count : t -> int

val engine : t -> int -> Engine.t
(** The shard's private engine: spawn processes on it, read its clock.
    Do not call its [run] directly while {!run} drives scheduling;
    running boot events to a bound {e before} {!run} (construction at
    [t = 0]) is fine. *)

val lookahead : t -> Time.t

val connect : ?lookahead:Time.t -> t -> src:int -> dst:int -> unit
(** Declare the directed edge [src -> dst].  Idempotent (the first
    declaration's lookahead wins).  [lookahead] overrides the runner
    default for this edge (floored at one tick).  Only declared edges
    may carry messages, and only declared edges constrain the
    destination's execution window. *)

val spawn_root : ?name:string -> t -> shard:int -> (unit -> unit) -> unit
(** Spawn a root process on the given shard (before or between runs). *)

val send :
  t -> src:int -> dst:int -> ?delay:Time.t -> name:string ->
  (unit -> unit) -> unit
(** [send t ~src ~dst ~name fn] — called while shard [src] executes —
    schedules [fn] as a root process on shard [dst] at
    [now src + max delay (lookahead of the edge)].
    @raise Invalid_argument if the edge was never {!connect}ed. *)

val run : ?domains:int -> ?deadline:Time.t -> ?keep_going:bool -> t -> unit
(** Drive every shard to completion.  [domains] (default 1, clamped to
    the shard count) is the number of OS domains executing each window;
    see the determinism contract above.  Worker domains are persistent
    for the whole run (one barrier crossing per window, not one domain
    spawn).

    [deadline] bounds every shard's clock exactly like
    [Engine.run ~deadline]: events past it are discarded and the
    shard's clock is left at the deadline.

    A shard whose window raises is marked dead: it executes nothing
    further, stops constraining its downstream shards, and its
    exception is recorded in {!errors}.  Unless [keep_going] is set
    (default false), the first such exception (lowest shard index) is
    re-raised after all remaining shards finish. *)

val errors : t -> (int * exn) list
(** Shards that died during the last {!run}, sorted by shard index.
    Empty on a clean run. *)

val windows_run : t -> int
(** Number of synchronization windows executed so far (diagnostics). *)
