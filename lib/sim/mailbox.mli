(** Unbounded FIFO message channel between simulation processes.

    [send] never blocks; [recv] blocks until a message is available.
    Delivery order is FIFO and receivers are served in arrival order. *)

type 'a t

val create : unit -> 'a t

val send : 'a t -> 'a -> unit
(** Enqueue a message; wakes one waiting receiver if any. *)

val recv : 'a t -> 'a
(** Dequeue the oldest message, blocking while the mailbox is empty. *)

val recv_timeout : 'a t -> Time.t -> 'a option
(** Like {!recv} but gives up after the timeout. *)

val try_recv : 'a t -> 'a option
(** Non-blocking receive. *)

val clear : 'a t -> unit
(** Discard all queued messages (crash simulation: a restarted server
    loses whatever was in flight).  Waiting receivers are unaffected. *)

val length : 'a t -> int
(** Messages currently queued (excludes messages already handed to
    waiting receivers). *)

val is_empty : 'a t -> bool
