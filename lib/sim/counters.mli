(** Named event counters.

    A registry for rare-path bookkeeping that rides along with
    {!Engine.global_events_executed}: retransmissions, dedup-cache
    hits, corrupt-frame NACKs, scrub repairs and the like.  Counters are
    plain integers with no simulation side effects — bumping one never
    schedules an event, so instrumented and uninstrumented runs produce
    identical schedules.

    Bumps made while an engine is running land in that engine's
    {!Engine.Local} storage, so shards on different domains never share
    counter state; bumps outside any engine go to a process-global
    table.  After a run, fold the engine tallies into the global view
    with {!merge} (in whatever deterministic order the harness picks)
    or read a single engine with {!get_in}/{!all_in}. *)

val bump : string -> unit
(** Increment a named counter (created at zero on first use) — in the
    current engine's table when called from simulation code, else in
    the global table. *)

val add : string -> int -> unit
(** Add an arbitrary amount to a named counter. *)

val get : string -> int
(** Current value (global table plus the current engine's, if any);
    0 for names never bumped. *)

val all : unit -> (string * int) list
(** All non-zero counters (global plus current engine), sorted by name. *)

val get_in : Engine.t -> string -> int
(** Value accumulated by one engine (not yet {!merge}d). *)

val all_in : Engine.t -> (string * int) list
(** All non-zero counters of one engine, sorted by name. *)

val merge : Engine.t -> unit
(** Fold the engine's tallies into the global table and clear them, so
    a later {!merge} of the same engine cannot double-count.  Call once
    per engine after it completes; order the calls deterministically
    when reporting must be reproducible. *)

val reset : unit -> unit
(** Zero every global counter (and the current engine's, if inside a
    run). *)
