(** Global named event counters.

    A process-wide registry for rare-path bookkeeping that rides along
    with {!Engine.global_events_executed}: retransmissions, dedup-cache
    hits, corrupt-frame NACKs, scrub repairs and the like.  Counters are
    plain integers with no simulation side effects — bumping one never
    schedules an event, so instrumented and uninstrumented runs produce
    identical schedules.

    Counters accumulate across engine runs (like the global event
    counter); harnesses that want per-run numbers snapshot around the
    run or call {!reset}. *)

val bump : string -> unit
(** Increment a named counter (created at zero on first use). *)

val add : string -> int -> unit
(** Add an arbitrary amount to a named counter. *)

val get : string -> int
(** Current value; 0 for names never bumped. *)

val all : unit -> (string * int) list
(** All non-zero counters, sorted by name. *)

val reset : unit -> unit
(** Zero every counter. *)
