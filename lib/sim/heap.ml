(* Parallel-array layout: keys and seqs live in unboxed [int array]s so
   the sift loops compare and move flat words instead of chasing entry
   records — no per-push allocation, better cache behaviour on the
   simulator's hottest structure.  Ordering is (key, seq) lexicographic;
   [seq] values are unique per heap, so the order is total and pop
   sequence is independent of layout. *)

type 'a t = {
  mutable keys : int array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable len : int;
}

let create () = { keys = [||]; seqs = [||]; vals = [||]; len = 0 }
let length h = h.len
let is_empty h = h.len = 0

let grow h filler =
  let cap = Array.length h.keys in
  if h.len = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let nkeys = Array.make ncap 0 in
    let nseqs = Array.make ncap 0 in
    let nvals = Array.make ncap filler in
    Array.blit h.keys 0 nkeys 0 h.len;
    Array.blit h.seqs 0 nseqs 0 h.len;
    Array.blit h.vals 0 nvals 0 h.len;
    h.keys <- nkeys;
    h.seqs <- nseqs;
    h.vals <- nvals
  end

let push h ~key ~seq value =
  grow h value;
  let keys = h.keys and seqs = h.seqs and vals = h.vals in
  (* Sift up by moving parents down; place the new element once. *)
  let i = ref h.len in
  h.len <- h.len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    let pk = Array.unsafe_get keys p in
    if key < pk || (key = pk && seq < Array.unsafe_get seqs p) then begin
      Array.unsafe_set keys !i pk;
      Array.unsafe_set seqs !i (Array.unsafe_get seqs p);
      Array.unsafe_set vals !i (Array.unsafe_get vals p);
      i := p
    end
    else continue := false
  done;
  Array.unsafe_set keys !i key;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set vals !i value

let top_key h = Array.unsafe_get h.keys 0

(* Allocation-free removal: the caller reads [top_key] first if it needs
   the timestamp; no [(key, seq, value)] triple is boxed. *)
let pop_top h =
  if h.len = 0 then invalid_arg "Heap.pop_top: empty heap"
  else begin
    let keys = h.keys and seqs = h.seqs and vals = h.vals in
    let top_val = vals.(0) in
    h.len <- h.len - 1;
    let n = h.len in
    if n > 0 then begin
      (* Move the last element to the root, then sift it down. *)
      let key = Array.unsafe_get keys n in
      let seq = Array.unsafe_get seqs n in
      let v = Array.unsafe_get vals n in
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let s = ref !i in
        let sk = ref key and ss = ref seq in
        if l < n then begin
          let lk = Array.unsafe_get keys l in
          if lk < !sk || (lk = !sk && Array.unsafe_get seqs l < !ss) then begin
            s := l;
            sk := lk;
            ss := Array.unsafe_get seqs l
          end
        end;
        if r < n then begin
          let rk = Array.unsafe_get keys r in
          if rk < !sk || (rk = !sk && Array.unsafe_get seqs r < !ss) then begin
            s := r;
            sk := rk;
            ss := Array.unsafe_get seqs r
          end
        end;
        if !s <> !i then begin
          Array.unsafe_set keys !i !sk;
          Array.unsafe_set seqs !i !ss;
          Array.unsafe_set vals !i (Array.unsafe_get vals !s);
          i := !s
        end
        else continue := false
      done;
      Array.unsafe_set keys !i key;
      Array.unsafe_set seqs !i seq;
      Array.unsafe_set vals !i v
    end;
    (* Overwrite the vacated tail slot so it doesn't pin its old value
       against collection. *)
    if n > 0 then Array.unsafe_set vals n (Array.unsafe_get vals 0);
    top_val
  end

let pop h =
  if h.len = 0 then None
  else begin
    let key = h.keys.(0) and seq = h.seqs.(0) in
    let v = pop_top h in
    Some (key, seq, v)
  end

let peek_key h = if h.len = 0 then None else Some h.keys.(0)
