type 'a t = { messages : 'a Queue.t; nonempty : Cond.t }

let create () = { messages = Queue.create (); nonempty = Cond.create () }

let send t v =
  Queue.add v t.messages;
  Cond.signal t.nonempty

let rec recv t =
  match Queue.take_opt t.messages with
  | Some v -> v
  | None ->
      Cond.await t.nonempty;
      recv t

let recv_timeout t d =
  let deadline = Engine.now () + d in
  let rec loop () =
    match Queue.take_opt t.messages with
    | Some v -> Some v
    | None ->
        let remaining = deadline - Engine.now () in
        if remaining <= 0 then None
        else begin
          ignore (Cond.await_timeout t.nonempty remaining : bool);
          loop ()
        end
  in
  loop ()

let clear t = Queue.clear t.messages
let try_recv t = Queue.take_opt t.messages
let length t = Queue.length t.messages
let is_empty t = Queue.is_empty t.messages
