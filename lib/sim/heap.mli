(** Array-based binary min-heap used as the simulator's event queue.

    Elements are ordered by a pair [(key, seq)]: the primary key is the
    event timestamp; [seq] is a caller-supplied tie-breaker that makes
    ordering of simultaneous events deterministic (FIFO by insertion). *)

type 'a t
(** A min-heap holding values of type ['a]. *)

val create : unit -> 'a t
(** [create ()] is an empty heap. *)

val length : 'a t -> int
(** Number of elements currently in the heap. *)

val is_empty : 'a t -> bool

val push : 'a t -> key:int -> seq:int -> 'a -> unit
(** [push h ~key ~seq v] inserts [v] with priority [(key, seq)]. *)

val pop : 'a t -> (int * int * 'a) option
(** [pop h] removes and returns the minimum element as
    [(key, seq, value)], or [None] when the heap is empty. *)

val top_key : 'a t -> int
(** Minimum key without removing it.  Undefined on an empty heap —
    check {!is_empty} first.  Unlike {!peek_key} this allocates
    nothing, which matters in the engine's run loop. *)

val pop_top : 'a t -> 'a
(** Remove and return the minimum element's value without boxing the
    [(key, seq, value)] triple; the caller reads {!top_key} beforehand
    if it needs the timestamp.  @raise Invalid_argument when empty. *)

val peek_key : 'a t -> int option
(** [peek_key h] is the minimum key without removing it. *)
