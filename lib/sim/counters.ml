(* Named event counters.

   Bumps made while an engine is running ([Engine.current () = Some _],
   i.e. from simulation processes — the only place the robustness
   counters are incremented) land in that engine's {!Engine.Local}
   table: a plain [int ref] per name, touched only by the domain
   currently executing the engine, so sharded runs need no
   synchronization and never share counter state across domains.

   Bumps made outside any engine fall back to a process-global table
   (atomics under a mutex, as before).  Harnesses fold engine-local
   tallies into the global table with {!merge} — in a deterministic
   order of their choosing — and then read totals with {!get}/{!all}. *)

type local = (string, int ref) Hashtbl.t

let local_key : local Engine.Local.key = Engine.Local.key ()

let local_table eng =
  match Engine.Local.get eng local_key with
  | Some h -> h
  | None ->
      let h : local = Hashtbl.create 16 in
      Engine.Local.set eng local_key h;
      h

(* ---- process-global fallback table ---- *)

let mu = Mutex.create ()
let table : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 16

let cell name =
  Mutex.protect mu (fun () ->
      match Hashtbl.find_opt table name with
      | Some r -> r
      | None ->
          let r = Atomic.make 0 in
          Hashtbl.add table name r;
          r)

let global_add name n = ignore (Atomic.fetch_and_add (cell name) n : int)

let add name n =
  match Engine.current () with
  | Some eng -> (
      let h = local_table eng in
      match Hashtbl.find_opt h name with
      | Some r -> r := !r + n
      | None -> Hashtbl.add h name (ref n))
  | None -> global_add name n

let bump name = add name 1

let get_in eng name =
  match Engine.Local.get eng local_key with
  | None -> 0
  | Some h -> ( match Hashtbl.find_opt h name with Some r -> !r | None -> 0)

let all_in eng =
  match Engine.Local.get eng local_key with
  | None -> []
  | Some h ->
      Hashtbl.fold (fun k r acc -> if !r <> 0 then (k, !r) :: acc else acc) h []
      |> List.sort compare

let merge eng =
  match Engine.Local.get eng local_key with
  | None -> ()
  | Some h ->
      Hashtbl.iter (fun k r -> if !r <> 0 then global_add k !r) h;
      Hashtbl.reset h

let get name =
  let local =
    match Engine.current () with Some eng -> get_in eng name | None -> 0
  in
  local
  + Mutex.protect mu (fun () ->
        match Hashtbl.find_opt table name with
        | Some r -> Atomic.get r
        | None -> 0)

let all () =
  let global =
    Mutex.protect mu (fun () ->
        Hashtbl.fold
          (fun k r acc ->
            let v = Atomic.get r in
            if v <> 0 then (k, v) :: acc else acc)
          table [])
  in
  let local =
    match Engine.current () with Some eng -> all_in eng | None -> []
  in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt tbl k with
      | Some r -> r := !r + v
      | None -> Hashtbl.add tbl k (ref v))
    (global @ local);
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl [] |> List.sort compare

let reset () =
  (match Engine.current () with
  | Some eng -> (
      match Engine.Local.get eng local_key with
      | Some h -> Hashtbl.reset h
      | None -> ())
  | None -> ());
  Mutex.protect mu (fun () -> Hashtbl.iter (fun _ r -> Atomic.set r 0) table)
