let table : (string, int ref) Hashtbl.t = Hashtbl.create 16

let cell name =
  match Hashtbl.find_opt table name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add table name r;
      r

let bump name = incr (cell name)
let add name n = cell name := !(cell name) + n
let get name = match Hashtbl.find_opt table name with Some r -> !r | None -> 0

let all () =
  Hashtbl.fold (fun k r acc -> if !r <> 0 then (k, !r) :: acc else acc) table []
  |> List.sort compare

let reset () = Hashtbl.iter (fun _ r -> r := 0) table
