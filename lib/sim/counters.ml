(* Domain-safe named counters.  Cells are atomics; the table itself is
   guarded by a mutex (OCaml Hashtbls are not safe under concurrent
   mutation).  Reads of existing cells take the lock too: counters are
   rare-path bookkeeping, never the event hot path, so the simplicity
   wins over a lock-free design. *)

let mu = Mutex.create ()
let table : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 16

let cell name =
  Mutex.protect mu (fun () ->
      match Hashtbl.find_opt table name with
      | Some r -> r
      | None ->
          let r = Atomic.make 0 in
          Hashtbl.add table name r;
          r)

let bump name = Atomic.incr (cell name)

let add name n =
  let c = cell name in
  ignore (Atomic.fetch_and_add c n : int)

let get name =
  Mutex.protect mu (fun () ->
      match Hashtbl.find_opt table name with
      | Some r -> Atomic.get r
      | None -> 0)

let all () =
  Mutex.protect mu (fun () ->
      Hashtbl.fold
        (fun k r acc ->
          let v = Atomic.get r in
          if v <> 0 then (k, v) :: acc else acc)
        table [])
  |> List.sort compare

let reset () =
  Mutex.protect mu (fun () -> Hashtbl.iter (fun _ r -> Atomic.set r 0) table)
