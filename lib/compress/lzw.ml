(* Classic LZW with 12-bit codes. The dictionary freezes when it
   reaches 4096 entries (no reset), which keeps encoder and decoder
   trivially in lock-step; chunk-sized inputs (<= 4 MB) rarely benefit
   from resets anyway.

   The encoder is built for the hot replication path:
   - the dictionary is a reusable open-addressed int table (no
     per-encode Hashtbl, no boxing, generation-stamped so reuse is a
     single counter bump);
   - codes are packed into a preallocated [bytes] sized from the worst
     case, not a growing [Buffer];
   - [encode_data] consumes payload slices directly — real spans are
     read in place, synthetic spans are fed from generator words, zero
     runs feed constant bytes — so a 4 MB chunk is never materialized
     just to measure its wire size. *)

let max_code = 4096
let first_free = 256

(* -------------------- dictionary -------------------- *)

(* Open addressing, linear probing.  Keys are [(prefix_code << 8) lor
   byte] (20 bits); capacity 16384 keeps load under 25% for the 3840
   insertable entries.  A slot is live iff its stamp equals the current
   generation, so "clearing" is [incr generation].

   The whole dictionary (plus the zero-run memo below) is one record,
   held in domain-local storage: engines on different domains (sharded
   simulations, parallel bench tasks) each get their own scratch state
   instead of racing on globals. *)
let dict_bits = 14
let dict_cap = 1 lsl dict_bits
let dict_mask = dict_cap - 1

type dict = {
  d_keys : int array;
  d_vals : int array;
  d_stamp : int array;
  (* Zero-run memo: replicated payloads are dominated by runs of
     zeros, for which [enc_step] keeps probing the same (w, 0) keys.
     [z_next.(w)] caches the dictionary's answer for prefix code [w]
     followed by a zero byte: >= 0 is the extended code, -1 means the
     dictionary is frozen and the key will never appear.  Valid iff
     [z_stamp.(w)] equals the current generation. *)
  z_next : int array;
  z_stamp : int array;
  mutable d_gen : int;
}

let make_dict () =
  {
    d_keys = Array.make dict_cap 0;
    d_vals = Array.make dict_cap 0;
    d_stamp = Array.make dict_cap (-1);
    z_next = Array.make max_code 0;
    z_stamp = Array.make max_code (-1);
    d_gen = 0;
  }

let dls_dict = Domain.DLS.new_key make_dict
let get_dict () = Domain.DLS.get dls_dict
let dict_reset d = d.d_gen <- d.d_gen + 1

let hash key = (key * 0x9E3779B1) lsr (31 - dict_bits) land dict_mask

(* Find [key]; returns its code or -1. *)
let rec dict_find_from d key i =
  if d.d_stamp.(i) <> d.d_gen then -1
  else if d.d_keys.(i) = key then d.d_vals.(i)
  else dict_find_from d key ((i + 1) land dict_mask)

let dict_find d key = dict_find_from d key (hash key)

(* Insert [key] (not present) with value [v]. *)
let dict_add d key v =
  let i = ref (hash key) in
  while d.d_stamp.(!i) = d.d_gen do
    i := (!i + 1) land dict_mask
  done;
  d.d_keys.(!i) <- key;
  d.d_vals.(!i) <- v;
  d.d_stamp.(!i) <- d.d_gen

(* -------------------- bit packing -------------------- *)

(* Little-endian 12-bit packing into a preallocated buffer, identical
   byte layout to the historical Buffer-based writer. *)
module Bitwriter = struct
  type t = {
    buf : bytes;
    mutable pos : int;
    mutable acc : int;
    mutable bits : int;
  }

  (* Worst case: one 12-bit code per input byte plus the final code. *)
  let create ~input_len ~header =
    let code_bytes = (((input_len + 1) * 12) + 7) / 8 in
    { buf = Bytes.create (header + code_bytes); pos = header; acc = 0; bits = 0 }

  let put t code =
    t.acc <- t.acc lor (code lsl t.bits);
    t.bits <- t.bits + 12;
    while t.bits >= 8 do
      Bytes.unsafe_set t.buf t.pos (Char.unsafe_chr (t.acc land 0xFF));
      t.pos <- t.pos + 1;
      t.acc <- t.acc lsr 8;
      t.bits <- t.bits - 8
    done

  let finish t =
    if t.bits > 0 then begin
      Bytes.unsafe_set t.buf t.pos (Char.unsafe_chr (t.acc land 0xFF));
      t.pos <- t.pos + 1;
      t.bits <- 0
    end;
    if t.pos = Bytes.length t.buf then t.buf else Bytes.sub t.buf 0 t.pos
end

module Bitreader = struct
  type t = { buf : Bytes.t; mutable pos : int; mutable acc : int; mutable bits : int }

  let create buf ~pos = { buf; pos; acc = 0; bits = 0 }

  let get t =
    while t.bits < 12 && t.pos < Bytes.length t.buf do
      t.acc <- t.acc lor (Bytes.get_uint8 t.buf t.pos lsl t.bits);
      t.pos <- t.pos + 1;
      t.bits <- t.bits + 8
    done;
    if t.bits < 12 then None
    else begin
      let code = t.acc land 0xFFF in
      t.acc <- t.acc lsr 12;
      t.bits <- t.bits - 12;
      Some code
    end
end

(* -------------------- encode -------------------- *)

(* The encoder automaton, fed one byte at a time through [step]; the
   emit side is abstracted so the same loops serve both real encoding
   and pure size measurement. *)

let header_len = 8

(* Per-domain mutable automaton state (see [dls_dict]). *)
type enc = {
  dict : dict;
  mutable w : int;
  mutable next : int;
  emit : int -> unit;
}

let enc_step e c =
  if e.w < 0 then e.w <- c
  else begin
    let key = (e.w lsl 8) lor c in
    let code = dict_find e.dict key in
    if code >= 0 then e.w <- code
    else begin
      e.emit e.w;
      if e.next < max_code then begin
        dict_add e.dict key e.next;
        e.next <- e.next + 1
      end;
      e.w <- c
    end
  end

(* Defined after [enc_step_zero]; real buffers route their zero bytes
   through the memo too (tencent-sort records embed long zero runs). *)

(* [enc_step e 0], with the (w, 0) dictionary probe served from the
   zero-run memo: one array read on the hit path instead of a hashed
   probe chain.  Byte-identical output to the generic step. *)
let enc_step_zero e =
  let w = e.w in
  if w < 0 then e.w <- 0
  else begin
    let d = e.dict in
    if d.z_stamp.(w) = d.d_gen then begin
      let nxt = d.z_next.(w) in
      if nxt >= 0 then e.w <- nxt
      else begin
        (* Frozen dictionary: (w, 0) is a permanent miss. *)
        e.emit w;
        e.w <- 0
      end
    end
    else begin
      let key = w lsl 8 in
      let code = dict_find d key in
      if code >= 0 then begin
        d.z_stamp.(w) <- d.d_gen;
        d.z_next.(w) <- code;
        e.w <- code
      end
      else begin
        e.emit w;
        if e.next < max_code then begin
          dict_add d key e.next;
          d.z_stamp.(w) <- d.d_gen;
          d.z_next.(w) <- e.next;
          e.next <- e.next + 1
        end
        else begin
          d.z_stamp.(w) <- d.d_gen;
          d.z_next.(w) <- -1
        end;
        e.w <- 0
      end
    end
  end

let enc_feed_zeros e n =
  for _ = 1 to n do
    enc_step_zero e
  done

let enc_feed_bytes e buf ~pos ~len =
  for i = pos to pos + len - 1 do
    let c = Char.code (Bytes.unsafe_get buf i) in
    if c = 0 then enc_step_zero e else enc_step e c
  done

let enc_feed_synth e ~seed ~off ~len =
  let o = ref off and n = ref len in
  while !n > 0 && !o land 7 <> 0 do
    let w = Storage.Data.synth_word seed (!o asr 3) in
    enc_step e
      (Int64.to_int (Int64.shift_right_logical w (8 * (!o land 7))) land 0xFF);
    incr o;
    decr n
  done;
  while !n >= 8 do
    let w = Storage.Data.synth_word seed (!o asr 3) in
    let lo = Int64.to_int (Int64.logand w 0xFFFFFFFFL) in
    let hi = Int64.to_int (Int64.shift_right_logical w 32) in
    enc_step e (lo land 0xFF);
    enc_step e ((lo lsr 8) land 0xFF);
    enc_step e ((lo lsr 16) land 0xFF);
    enc_step e ((lo lsr 24) land 0xFF);
    enc_step e (hi land 0xFF);
    enc_step e ((hi lsr 8) land 0xFF);
    enc_step e ((hi lsr 16) land 0xFF);
    enc_step e ((hi lsr 24) land 0xFF);
    o := !o + 8;
    n := !n - 8
  done;
  while !n > 0 do
    let w = Storage.Data.synth_word seed (!o asr 3) in
    enc_step e
      (Int64.to_int (Int64.shift_right_logical w (8 * (!o land 7))) land 0xFF);
    incr o;
    decr n
  done

let enc_feed_data e d =
  Storage.Data.iter_slices d (fun s ->
      match s with
      | Storage.Data.Sreal r -> enc_feed_bytes e r.buf ~pos:r.pos ~len:r.len
      | Storage.Data.Ssynth sy ->
          enc_feed_synth e ~seed:sy.seed ~off:sy.off ~len:sy.len
      | Storage.Data.Szero z -> enc_feed_zeros e z.len)

let enc_finish e = if e.w >= 0 then e.emit e.w

let encode input =
  let n = Bytes.length input in
  let out = Bitwriter.create ~input_len:n ~header:header_len in
  Bytes.set_int64_le out.Bitwriter.buf 0 (Int64.of_int n);
  if n = 0 then Bitwriter.finish out
  else begin
    let dict = get_dict () in
    dict_reset dict;
    let e = { dict; w = -1; next = first_free; emit = Bitwriter.put out } in
    enc_feed_bytes e input ~pos:0 ~len:n;
    enc_finish e;
    Bitwriter.finish out
  end

let encode_data d =
  let n = Storage.Data.length d in
  let out = Bitwriter.create ~input_len:n ~header:header_len in
  Bytes.set_int64_le out.Bitwriter.buf 0 (Int64.of_int n);
  if n > 0 then begin
    let dict = get_dict () in
    dict_reset dict;
    let e = { dict; w = -1; next = first_free; emit = Bitwriter.put out } in
    enc_feed_data e d;
    enc_finish e
  end;
  Storage.Data.real (Bitwriter.finish out)

let encoded_length_data d =
  let n = Storage.Data.length d in
  if n = 0 then header_len
  else begin
    let dict = get_dict () in
    dict_reset dict;
    let codes = ref 0 in
    let e =
      { dict; w = -1; next = first_free; emit = (fun _ -> incr codes) }
    in
    enc_feed_data e d;
    enc_finish e;
    header_len + (((!codes * 12) + 7) / 8)
  end

(* -------------------- decode -------------------- *)

let decode input =
  if Bytes.length input < 8 then invalid_arg "Lzw.decode: missing header";
  let n = Int64.to_int (Bytes.get_int64_le input 0) in
  if n < 0 then invalid_arg "Lzw.decode: bad length";
  let out = Buffer.create n in
  if n > 0 then begin
    let r = Bitreader.create input ~pos:8 in
    (* Chain representation: each code has a prefix code and a suffix
       byte; base codes 0..255 are their own byte. *)
    let prefix = Array.make max_code (-1) in
    let suffix = Array.make max_code '\000' in
    let next = ref first_free in
    let scratch = Bytes.create max_code in
    (* Expand a code into [scratch], returning (start, len); scratch is
       filled from the end backwards following the prefix chain. *)
    let expand code =
      let pos = ref max_code in
      let c = ref code in
      while !c >= 0 do
        decr pos;
        if !c < 256 then begin
          Bytes.set scratch !pos (Char.chr !c);
          c := -1
        end
        else begin
          if !c >= !next then invalid_arg "Lzw.decode: corrupt stream";
          Bytes.set scratch !pos suffix.(!c);
          c := prefix.(!c)
        end
      done;
      (!pos, max_code - !pos)
    in
    let first_char (start, _len) = Bytes.get scratch start in
    (match Bitreader.get r with
    | None -> invalid_arg "Lzw.decode: empty stream"
    | Some code0 ->
        if code0 >= 256 then invalid_arg "Lzw.decode: bad first code";
        Buffer.add_char out (Char.chr code0);
        let prev = ref code0 in
        let prev_first = ref (Char.chr code0) in
        let continue = ref true in
        while !continue && Buffer.length out < n do
          match Bitreader.get r with
          | None -> continue := false
          | Some code ->
              let span =
                if code < !next then expand code
                else if code = !next then begin
                  (* The cScSc special case: w + first char of w. *)
                  let start, len = expand !prev in
                  let moved = start - 1 in
                  if moved < 0 then invalid_arg "Lzw.decode: overflow";
                  Bytes.blit scratch start scratch moved len;
                  Bytes.set scratch (moved + len) !prev_first;
                  (moved, len + 1)
                end
                else invalid_arg "Lzw.decode: code out of range"
              in
              let start, len = span in
              Buffer.add_subbytes out scratch start len;
              if !next < max_code then begin
                prefix.(!next) <- !prev;
                suffix.(!next) <- first_char span;
                incr next
              end;
              prev := code;
              prev_first := first_char span
        done)
  end;
  let result = Buffer.to_bytes out in
  if Bytes.length result <> n then invalid_arg "Lzw.decode: length mismatch";
  result

let decode_data d = Storage.Data.real (decode (Storage.Data.to_bytes d))

let ratio ~original ~compressed =
  if original <= 0 then 0.0
  else 1.0 -. (float_of_int compressed /. float_of_int original)
