(** Lempel-Ziv-Welch compression (12-bit codes, packed).

    This is the algorithm NICFS runs in the optional compression stage
    of the replication pipeline (§5.4): real bytes in, real bytes out,
    so the Tencent Sort experiment measures genuine compressibility of
    its input records.

    The dictionary holds up to 4096 entries and freezes when full,
    which bounds memory and keeps the codec streaming-friendly.  The
    encoder reuses an open-addressed int dictionary across calls, packs
    bits into a worst-case-sized preallocated buffer, and can consume
    payloads slice-by-slice without materializing them. *)

val encode : Bytes.t -> Bytes.t
(** Compress. Output starts with an 8-byte little-endian original
    length. *)

val decode : Bytes.t -> Bytes.t
(** Decompress; inverse of {!encode}. Raises [Invalid_argument] on
    malformed input. *)

val encode_data : Storage.Data.t -> Storage.Data.t
(** Compress a payload by streaming its slices: real spans are read in
    place, synthetic spans are fed from generator words, zero runs feed
    constant bytes — the payload is never materialized.  The output is
    byte-identical to [encode (Data.to_bytes d)]. *)

val encoded_length_data : Storage.Data.t -> int
(** Length in bytes of [encode_data d]'s output, computed without
    allocating any output — the zero-copy path for sizing wire
    transfers. *)

val decode_data : Storage.Data.t -> Storage.Data.t

val ratio : original:int -> compressed:int -> float
(** Space saved as a fraction: [1 - compressed/original]; 0 when the
    original is empty. *)
