(** Post-scenario invariant checking.

    Four families of checks, run after the simulated cluster has been
    shaken by a fault plan, healed, recovered and drained:

    - {b prefix crash consistency}: every prefix of every client's
      persisted oplog is a consistent image — contiguous sequence
      numbers, valid checksums, every entry applicable to the state
      built by its predecessors (what a crash at any instant would
      recover to, §3.2);
    - {b lease single-writer safety}: the lease trace never shows two
      clients holding conflicting leases on an inode at once, modulo
      expiry and epoch-bump revocation (§3.4, §3.6);
    - {b idempotent application}: no replica applies an accepted
      operation more than once, even under fabric duplication and
      retransmission;
    - {b replica convergence}: byte-exact file-content agreement
      between the primary and every replica (§3.3.2). *)

type violation = { name : string; detail : string }

val pp_violation : Format.formatter -> violation -> unit

val check_prefix_consistency :
  histories:(int * Storage.Oplog.entry list) list -> violation list
(** [histories] maps each client id to its full persisted entry
    sequence (captured with {!Linefs.Libfs.set_entry_observer} —
    publication reclaims log entries, so the live log alone is not
    enough). *)

val check_single_writer : Trace.t -> violation list

val check_no_duplicate_apply :
  journals:(int * (int * int) list) list -> violation list
(** [journals] maps each replica node id to its chronological
    application journal of [(client, seq)] pairs
    ({!Linefs.Nicfs.apply_journal}).  Any pair applied more than once
    on one node is a "dup-apply" violation: a fabric duplicate or
    retransmission slipped past both the RPC dedup cache and the
    publication gate.  One violation per duplicated pair. *)

val check_convergence :
  primary:Storage.Fs_state.t ->
  replicas:(int * Storage.Fs_state.t) list ->
  violation list
