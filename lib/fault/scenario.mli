(** One DST scenario: a seeded random workload over a 3-replica LineFS
    cluster, shaken by a timed fault plan, then healed, recovered,
    drained and invariant-checked.

    Everything is derived deterministically from the seed — the
    engine's event interleaving, the clients' operation streams, the
    fault plan, and the network-fault RNG — so a failing seed replays
    exactly. *)

open Sim

type spec = {
  seed : int;
  nodes : int;
  clients : int;
  ops_per_client : int;
  horizon : Time.t;  (** Workload/fault window; drain follows it. *)
  plan : Plan.t;
}

type outcome = {
  completed : bool;
      (** The scenario ran to completion before the engine deadline;
          [false] means it wedged (itself reported as a violation). *)
  violations : Invariant.violation list;
  fs_digest : int32;  (** Primary file-system digest at the end. *)
  trace_events : int;
  ops_logged : int;  (** Entries persisted across all client logs. *)
  drops : int;  (** Messages the fault layer lost. *)
  delays : int;  (** Transfers the fault layer delayed. *)
  dups : int;  (** Messages the fault layer duplicated. *)
  reorders : int;  (** One-way posts the fault layer held back. *)
  corrupts : int;  (** Frames the fault layer bit-corrupted. *)
  scrubbed : int;
      (** Scrub actions: torn-record re-fetches + bit-rot repairs. *)
}

val failed : outcome -> bool
(** Wedged or at least one violation. *)

val generate : seed:int -> spec
(** Derive a full scenario (cluster size 3, 1–2 clients, 25–64 ops
    each, 1–4 faults) from a seed. *)

val generate_adversary : seed:int -> spec
(** Byzantine-fabric profile: same workload shape, but the plan draws
    only duplication / reordering / corruption / storage faults
    ({!Plan.generate_adversary}) — the CI adversary sweep's spec. *)

(** {1 Explicit failover scenarios}

    Generated plans never crash node 0 and always heal; these cover
    what they cannot: the degraded-mode (host fallback) machinery and
    permanent-death chain reconfiguration.  The seed still controls the
    workload and the engine interleaving. *)

val failover_primary_crash : seed:int -> spec
(** NIC crash on the primary mid-pipeline: clients ride through on the
    host fallback, then fail back after the restart. *)

val failover_crash_during_failback : seed:int -> spec
(** A second primary NIC crash timed to land while the first fail-back
    is still draining. *)

val failover_replica_death : seed:int -> spec
(** Permanent whole-node death of the chain tail: the chain must
    reconfigure and complete outstanding ack sets without it. *)

val failover_double_failure : seed:int -> spec
(** Middle replica NIC crash concurrent with permanent tail death. *)

val run : spec -> outcome
(** Execute in a fresh engine; never raises on invariant violations —
    they come back in the outcome.  The fault hook and observers
    (network injection, lease observer, entry observer) are installed
    engine-locally and die with the engine. *)

val run_batch : ?domains:int -> spec list -> outcome list
(** Run many independent scenarios, one per {!Sim.Sharded} shard, with
    up to [domains] (default 1) running in parallel.  The shards share
    no edges, so each runs with exactly the single-engine semantics of
    {!run}: outcomes — digests, traces, counters — are identical to
    sequential [run] calls at every domain count.  [keep_going]
    semantics: one scenario crashing doesn't stop the others. *)

val pp_spec : Format.formatter -> spec -> unit
val pp_outcome : Format.formatter -> outcome -> unit

(** {1 Reuse by other fault harnesses}

    The conformance litmus harness drives the same fault machinery over
    its own workload; sharing the driver keeps fault semantics (and
    [DST_DEBUG] timelines) identical across both. *)

val drive_fault : Trace.t -> Netfault.t -> Linefs.Deployment.t -> Plan.fault -> unit
(** Sleep until the fault's injection time, apply it, and see it
    through to its end (restart/heal/expiry).  Spawn one process per
    fault of a plan. *)

val crashed_nodes : Plan.t -> int list
(** Nodes a plan crash-restarts (candidates for post-plan recovery). *)

val dead_nodes : Plan.t -> int list
(** Nodes a plan kills permanently. *)

val bitrot_nodes : Plan.t -> int list
(** Nodes whose persisted extents a plan bit-rots (scrub targets). *)
