(** Timed fault plans for deterministic simulation testing.

    A plan is a list of faults, each with an absolute injection time
    and a bounded duration — every crash restarts and every partition
    heals within the plan's horizon, so a correct system must converge
    once the dust settles.  Plans are generated from a seeded
    {!Sim.Rng} stream and shrink structurally (dropping one fault at a
    time) to minimal reproducers. *)

open Sim

type fault =
  | Crash of { node : int; at : Time.t; restart_after : Time.t }
      (** Power-fail the node's NICFS at [at]; bring it back
          [restart_after] later.  Never targets node 0 (the primary
          hosts the clients). *)
  | Node_death of { node : int; at : Time.t }
      (** Whole-node failure (NIC and host) with no restart: the node
          drops out of the replication chain permanently and the
          cluster must reconfigure around it.  Not produced by
          {!generate} (a generated plan's faults all heal); used by
          explicit failover scenarios.  Never targets node 0. *)
  | Stall of { node : int; at : Time.t; duration : Time.t }
      (** NIC-core stall: all RDMA traffic touching the node is held
          until the stall ends (models a wimpy-core scheduling glitch,
          §5.4). *)
  | Partition of { a : int; b : int; at : Time.t; heal_after : Time.t }
      (** Sever the link between nodes [a] and [b]; RPCs on it are
          lost until healed. *)
  | Link_delay of {
      a : int;
      b : int;
      at : Time.t;
      duration : Time.t;
      delay : Time.t;
    }  (** Extra one-way fabric latency on the link while active. *)
  | Link_drop of {
      a : int;
      b : int;
      at : Time.t;
      duration : Time.t;
      p : float;
    }  (** Drop each RPC on the link with probability [p] while
          active. *)
  | Link_dup of {
      a : int;
      b : int;
      at : Time.t;
      duration : Time.t;
      p : float;
    }
      (** Deliver each RPC on the link twice with probability [p]
          (fabric-level retransmission of received frames) while
          active — exercises RPC idempotence and the server dedup
          cache. *)
  | Link_reorder of {
      a : int;
      b : int;
      at : Time.t;
      duration : Time.t;
      p : float;
      delay : Time.t;
    }
      (** Hold each one-way post on the link back by [delay] with
          probability [p], letting later sends overtake it. *)
  | Link_corrupt of {
      a : int;
      b : int;
      at : Time.t;
      duration : Time.t;
      p : float;
    }
      (** Bit-corrupt each RPC frame on the link with probability [p];
          receivers must NACK via the end-to-end CRC trailer and rely
          on retransmission. *)
  | Torn_tail of { node : int; at : Time.t }
      (** Storage fault: the newest replicated-but-unpublished record
          persisted on [node]'s host PM turns out torn (partial write).
          The recovery scrub must truncate it and re-fetch from the
          next chain replica.  Never targets node 0. *)
  | Bit_rot of { node : int; at : Time.t; salt : int }
      (** Storage fault: flip one byte (chosen deterministically from
          [salt]) in [node]'s persisted extents.  The recovery-time
          scrub detects the damaged inode by CRC comparison against the
          chain source and re-fetches its content.  Never targets
          node 0. *)

type t = fault list

val start_of : fault -> Time.t
val end_of : fault -> Time.t
(** When the fault's effect is fully over (restart / heal / expiry). *)

val horizon : t -> Time.t
(** Latest [end_of] over the plan; zero for the empty plan. *)

val generate : rng:Rng.t -> nodes:int -> horizon:Time.t -> t
(** 1–4 random faults, each starting within the first 60% of
    [horizon] and finished before ~90% of it.  Draws from the full
    fault alphabet, including duplication/reordering/corruption links
    and storage faults. *)

val generate_adversary : rng:Rng.t -> nodes:int -> horizon:Time.t -> t
(** Byzantine-fabric profile: 2–5 faults drawn only from duplication,
    reordering, corruption and storage faults, at aggressive
    probabilities.  The CI adversary sweep runs this. *)

val shrink : t -> t list
(** Greedy shrinking candidates, in order: every plan obtained by
    deleting exactly one fault, then every plan obtained by halving one
    fault's parameters (durations, extra delays and probabilities move
    toward zero, floored so the candidate list stays finite). *)

val pp_fault : Format.formatter -> fault -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
