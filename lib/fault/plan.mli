(** Timed fault plans for deterministic simulation testing.

    A plan is a list of faults, each with an absolute injection time
    and a bounded duration — every crash restarts and every partition
    heals within the plan's horizon, so a correct system must converge
    once the dust settles.  Plans are generated from a seeded
    {!Sim.Rng} stream and shrink structurally (dropping one fault at a
    time) to minimal reproducers. *)

open Sim

type fault =
  | Crash of { node : int; at : Time.t; restart_after : Time.t }
      (** Power-fail the node's NICFS at [at]; bring it back
          [restart_after] later.  Never targets node 0 (the primary
          hosts the clients). *)
  | Node_death of { node : int; at : Time.t }
      (** Whole-node failure (NIC and host) with no restart: the node
          drops out of the replication chain permanently and the
          cluster must reconfigure around it.  Not produced by
          {!generate} (a generated plan's faults all heal); used by
          explicit failover scenarios.  Never targets node 0. *)
  | Stall of { node : int; at : Time.t; duration : Time.t }
      (** NIC-core stall: all RDMA traffic touching the node is held
          until the stall ends (models a wimpy-core scheduling glitch,
          §5.4). *)
  | Partition of { a : int; b : int; at : Time.t; heal_after : Time.t }
      (** Sever the link between nodes [a] and [b]; RPCs on it are
          lost until healed. *)
  | Link_delay of {
      a : int;
      b : int;
      at : Time.t;
      duration : Time.t;
      delay : Time.t;
    }  (** Extra one-way fabric latency on the link while active. *)
  | Link_drop of {
      a : int;
      b : int;
      at : Time.t;
      duration : Time.t;
      p : float;
    }  (** Drop each RPC on the link with probability [p] while
          active. *)

type t = fault list

val start_of : fault -> Time.t
val end_of : fault -> Time.t
(** When the fault's effect is fully over (restart / heal / expiry). *)

val horizon : t -> Time.t
(** Latest [end_of] over the plan; zero for the empty plan. *)

val generate : rng:Rng.t -> nodes:int -> horizon:Time.t -> t
(** 1–4 random faults, each starting within the first 60% of
    [horizon] and finished before ~90% of it. *)

val shrink : t -> t list
(** All plans obtained by deleting exactly one fault, in order. *)

val pp_fault : Format.formatter -> fault -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
