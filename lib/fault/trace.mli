(** Global event trace of one DST scenario.

    Records lease transitions (via {!Linefs.Lease.set_observer}),
    cluster epoch bumps, and fault plan milestones, each stamped with a
    monotonically increasing index and the virtual time.  The invariant
    checker replays the trace to verify lease single-writer safety;
    the index total is part of the determinism fingerprint. *)

open Sim

type event =
  | Lease of Linefs.Lease.event
  | Epoch of int
  | Fault of string  (** A plan fault being applied or reverted. *)
  | Note of string

type record = { index : int; time : Time.t; event : event }

type t

val create : unit -> t
val add : t -> event -> unit
val count : t -> int
val events : t -> record list
(** In recording order. *)

val pp_event : Format.formatter -> event -> unit
val pp_record : Format.formatter -> record -> unit
