open Sim
module Fs_state = Storage.Fs_state
module Oplog = Storage.Oplog

type violation = { name : string; detail : string }

let pp_violation fmt v = Format.fprintf fmt "[%s] %s" v.name v.detail

let v name fmt = Format.kasprintf (fun detail -> { name; detail }) fmt

(* ------------------------------------------------------------------ *)
(* Prefix crash consistency                                            *)
(* ------------------------------------------------------------------ *)

(* Every prefix of a client's persisted operation history must be a
   consistent file-system image: sequence numbers contiguous from 1 and
   every operation applicable to the state built by its predecessors.
   Replaying once and checking each step covers all prefixes at once. *)
let check_prefix_consistency ~(histories : (int * Oplog.entry list) list) =
  List.concat_map
    (fun (client, entries) ->
      let fs = Fs_state.create () in
      let bad = ref [] in
      let expect = ref 1 in
      List.iter
        (fun (e : Oplog.entry) ->
          if e.Oplog.seq <> !expect then
            bad :=
              v "log-gap" "client %d: entry seq %d where %d expected" client
                e.Oplog.seq !expect
              :: !bad;
          expect := e.Oplog.seq + 1;
          if not (Oplog.check e) then
            bad :=
              v "log-crc" "client %d: entry seq %d fails its checksum" client
                e.Oplog.seq
              :: !bad;
          match Fs_state.apply fs e.Oplog.op with
          | Ok () -> ()
          | Error err ->
              bad :=
                v "prefix-replay"
                  "client %d: entry seq %d (%s) does not apply: %s" client
                  e.Oplog.seq
                  (Format.asprintf "%a" Oplog.pp_op e.Oplog.op)
                  (Fs_state.error_to_string err)
                :: !bad)
        entries;
      List.rev !bad)
    histories

(* ------------------------------------------------------------------ *)
(* Lease single-writer safety                                          *)
(* ------------------------------------------------------------------ *)

type hold = {
  h_ltype : Linefs.Lease.ltype;
  h_epoch : int;
  h_expires : Time.t;
}

(* Replay the scenario's lease trace and flag overlapping grants.  A
   hold opens at its Granted record and closes at the matching
   Released/Expired, at wall-clock expiry, or when the cluster epoch
   moves past its grant epoch (the epoch bump is a cluster-wide
   revocation, §3.6). *)
let check_single_writer (trace : Trace.t) =
  let holds : (int * int, (int, hold) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 32
  in
  let epoch = ref 1 in
  let bad = ref [] in
  let table node inum =
    let k = (node, inum) in
    match Hashtbl.find_opt holds k with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 4 in
        Hashtbl.replace holds k h;
        h
  in
  List.iter
    (fun (r : Trace.record) ->
      match r.Trace.event with
      | Trace.Epoch e -> epoch := max !epoch e
      | Trace.Fault _ | Trace.Note _ -> ()
      | Trace.Lease (Linefs.Lease.Released { node; client; inum })
      | Trace.Lease (Linefs.Lease.Expired { node; client; inum }) ->
          Hashtbl.remove (table node inum) client
      | Trace.Lease
          (Linefs.Lease.Granted { node; client; inum; ltype; epoch = ge; expires })
        ->
          let tbl = table node inum in
          (* Retire holds that died silently: past expiry or from a
             pre-bump epoch. *)
          Hashtbl.iter
            (fun c (h : hold) ->
              if h.h_expires <= r.Trace.time || h.h_epoch < !epoch then
                Hashtbl.remove tbl c)
            (Hashtbl.copy tbl);
          Hashtbl.iter
            (fun c (h : hold) ->
              if c <> client && (ltype = Linefs.Lease.Write || h.h_ltype = Linefs.Lease.Write)
              then
                bad :=
                  v "lease-overlap"
                    "trace #%d: node %d inum %d: client %d granted %s while \
                     client %d still holds %s (epoch %d, expires %s)"
                    r.Trace.index node inum client
                    (match ltype with
                    | Linefs.Lease.Write -> "Write"
                    | Linefs.Lease.Read -> "Read")
                    c
                    (match h.h_ltype with
                    | Linefs.Lease.Write -> "Write"
                    | Linefs.Lease.Read -> "Read")
                    h.h_epoch
                    (Time.to_string h.h_expires)
                  :: !bad)
            tbl;
          Hashtbl.replace tbl client
            { h_ltype = ltype; h_epoch = ge; h_expires = expires })
    (Trace.events trace);
  List.rev !bad

(* ------------------------------------------------------------------ *)
(* Idempotent application                                              *)
(* ------------------------------------------------------------------ *)

(* Every accepted operation applies exactly once per replica: a
   duplicated (client, seq) pair in a node's application journal means
   a fabric duplicate or a retransmission slipped past both dedup
   layers (RPC cache and publication gate).  State-level idempotence
   can mask that — [Fs_state.apply] tolerates Write replays — so the
   journal, not the digest, is the evidence. *)
let check_no_duplicate_apply ~(journals : (int * (int * int) list) list) =
  List.concat_map
    (fun (node, entries) ->
      let seen = Hashtbl.create 64 in
      let bad = ref [] in
      List.iter
        (fun (client, seq) ->
          if Hashtbl.mem seen (client, seq) then begin
            if not (Hashtbl.find seen (client, seq)) then begin
              Hashtbl.replace seen (client, seq) true;
              bad :=
                v "dup-apply"
                  "node %d: op (client=%d, seq=%d) applied more than once"
                  node client seq
                :: !bad
            end
          end
          else Hashtbl.replace seen (client, seq) false)
        entries;
      List.rev !bad)
    journals

(* ------------------------------------------------------------------ *)
(* Replica convergence                                                 *)
(* ------------------------------------------------------------------ *)

(* After the fault horizon has passed, recovery has run and pipelines
   are drained, every replica must present a byte-identical file system
   to the primary's. *)
let check_convergence ~primary ~(replicas : (int * Fs_state.t) list) =
  let want = Fs_state.digest primary in
  List.filter_map
    (fun (node, fs) ->
      let got = Fs_state.digest fs in
      if got <> want then
        Some
          (v "divergence"
             "node %d digest %08lx != primary digest %08lx (inodes %d vs %d)"
             node got want
             (Fs_state.live_inodes fs)
             (Fs_state.live_inodes primary))
      else None)
    replicas
