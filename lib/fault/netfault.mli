(** Network fault state machine driving the {!Net.Inject} hook.

    Holds the live per-link state (partitioned / extra delay / drop
    probability) and per-node NIC stalls; the scenario driver flips
    these as the fault plan's start and end times pass.  Drop decisions
    come from the harness's own seeded RNG stream, so a given seed
    always loses the same messages.

    Only inter-node traffic is touched: a node's host <-> NIC control
    plane stays up under any network fault, as on real hardware. *)

open Sim

type t

val create : rng:Rng.t -> t

val install : t -> unit
(** Install as the process-wide {!Net.Inject} hook (replacing any). *)

val uninstall : unit -> unit
(** Clear the hook — all traffic passes again. *)

val set_partition : t -> a:int -> b:int -> bool -> unit
val set_delay : t -> a:int -> b:int -> Time.t -> unit
val set_drop : t -> a:int -> b:int -> float -> unit

val set_dup : t -> a:int -> b:int -> float -> unit
(** Probability that a message on the link is delivered twice. *)

val set_reorder : t -> a:int -> b:int -> p:float -> delay:Time.t -> unit
(** Probability that a one-way post is held back by [delay] while later
    sends overtake it. *)

val set_corrupt : t -> a:int -> b:int -> float -> unit
(** Probability that a frame is bit-corrupted in flight; the damaged
    offset and XOR mask are drawn from the seeded RNG.  Receivers
    detect this via the end-to-end CRC trailer and NACK the frame. *)

val set_stall : t -> node:int -> until:Time.t -> unit
(** Hold all RDMA traffic touching [node] until the virtual instant
    [until]. *)

val clear_stall : t -> node:int -> unit

val drops : t -> int
(** Messages lost so far. *)

val delays : t -> int
(** Transfers delayed so far. *)

val dups : t -> int
(** Messages duplicated so far. *)

val reorders : t -> int
(** Posts reordered so far. *)

val corrupts : t -> int
(** Frames corrupted so far. *)
