open Sim

type event =
  | Lease of Linefs.Lease.event
  | Epoch of int
  | Fault of string
  | Note of string

type record = { index : int; time : Time.t; event : event }

type t = { mutable records : record list; mutable count : int }

let create () = { records = []; count = 0 }

let add t event =
  t.records <-
    { index = t.count; time = Engine.now (); event } :: t.records;
  t.count <- t.count + 1

let count t = t.count
let events t = List.rev t.records

let ltype_name = function
  | Linefs.Lease.Read -> "R"
  | Linefs.Lease.Write -> "W"

let pp_event fmt = function
  | Lease (Linefs.Lease.Granted { node; client; inum; ltype; epoch; expires })
    ->
      Format.fprintf fmt "grant n%d c%d i%d %s e%d exp=%a" node client inum
        (ltype_name ltype) epoch Time.pp expires
  | Lease (Linefs.Lease.Released { node; client; inum }) ->
      Format.fprintf fmt "release n%d c%d i%d" node client inum
  | Lease (Linefs.Lease.Expired { node; client; inum }) ->
      Format.fprintf fmt "expire n%d c%d i%d" node client inum
  | Epoch e -> Format.fprintf fmt "epoch %d" e
  | Fault s -> Format.fprintf fmt "fault %s" s
  | Note s -> Format.fprintf fmt "note %s" s

let pp_record fmt r =
  Format.fprintf fmt "#%d @%a %a" r.index Time.pp r.time pp_event r.event
