open Sim

type link = {
  mutable partitioned : bool;
  mutable extra_delay : Time.t;
  mutable drop_p : float;
  mutable dup_p : float;
  mutable reorder_p : float;
  mutable reorder_delay : Time.t;
  mutable corrupt_p : float;
}

type t = {
  links : (int * int, link) Hashtbl.t;
  stalled_until : (int, Time.t) Hashtbl.t;
  rng : Rng.t;
  mutable drops : int;
  mutable delays : int;
  mutable dups : int;
  mutable reorders : int;
  mutable corrupts : int;
}

let create ~rng =
  {
    links = Hashtbl.create 8;
    stalled_until = Hashtbl.create 8;
    rng;
    drops = 0;
    delays = 0;
    dups = 0;
    reorders = 0;
    corrupts = 0;
  }

let key a b = (min a b, max a b)

let link t a b =
  let k = key a b in
  match Hashtbl.find_opt t.links k with
  | Some l -> l
  | None ->
      let l =
        {
          partitioned = false;
          extra_delay = Time.ns 0;
          drop_p = 0.0;
          dup_p = 0.0;
          reorder_p = 0.0;
          reorder_delay = Time.ns 0;
          corrupt_p = 0.0;
        }
      in
      Hashtbl.replace t.links k l;
      l

let set_partition t ~a ~b on = (link t a b).partitioned <- on
let set_delay t ~a ~b d = (link t a b).extra_delay <- d
let set_drop t ~a ~b p = (link t a b).drop_p <- p
let set_dup t ~a ~b p = (link t a b).dup_p <- p

let set_reorder t ~a ~b ~p ~delay =
  let l = link t a b in
  l.reorder_p <- p;
  l.reorder_delay <- delay

let set_corrupt t ~a ~b p = (link t a b).corrupt_p <- p

let set_stall t ~node ~until = Hashtbl.replace t.stalled_until node until
let clear_stall t ~node = Hashtbl.remove t.stalled_until node

let stall_remaining t node =
  match Hashtbl.find_opt t.stalled_until node with
  | None -> Time.ns 0
  | Some until ->
      let now = Engine.now () in
      if until > now then until - now else Time.ns 0

(* The injection hook.  Intra-node traffic (LibFS <-> local NICFS over
   PCIe, NICFS <-> local kernel worker) never touches the fabric and is
   exempt — a network fault must not sever a node's own control plane.

   Layering of the two RPC paths over the underlying RDMA move:
   [Rpc.call]/[Rpc.post] internally perform [Rdma.move] for their
   payloads, so a single logical send consults the hook twice.  Message
   fates (drop, duplicate, corrupt, reorder) are decided once, at the
   RPC points; delays are charged once, at the move.  Deciding both at
   both layers would double-charge delay and make loss rates quadratic
   in the drop probability.

   RNG discipline: each probability draws only when its knob is
   nonzero, so plans that never arm duplication/reordering/corruption
   consume exactly the RNG stream the pre-Byzantine harness did. *)
let verdict t ~point ~(src : Net.Loc.t) ~(dst : Net.Loc.t) ~bytes =
  let sn = (Net.Loc.node src).Hw.Node.id in
  let dn = (Net.Loc.node dst).Hw.Node.id in
  if sn = dn then Net.Inject.Pass
  else
    let l = link t sn dn in
    match (point : Net.Inject.point) with
    | Rpc_call | Rpc_post ->
        if l.partitioned then begin
          t.drops <- t.drops + 1;
          Net.Inject.Drop
        end
        else if l.drop_p > 0.0 && Rng.float t.rng 1.0 < l.drop_p then begin
          t.drops <- t.drops + 1;
          Net.Inject.Drop
        end
        else if l.dup_p > 0.0 && Rng.float t.rng 1.0 < l.dup_p then begin
          t.dups <- t.dups + 1;
          Net.Inject.Duplicate
        end
        else if l.corrupt_p > 0.0 && Rng.float t.rng 1.0 < l.corrupt_p
        then begin
          t.corrupts <- t.corrupts + 1;
          Net.Inject.Corrupt
            {
              offset = Rng.int t.rng (max 1 bytes);
              xor = 1 + Rng.int t.rng 255;
            }
        end
        else if
          (* Reordering only makes sense for one-way posts: a blocked
             round-trip caller observes it as latency anyway. *)
          point = Rpc_post && l.reorder_p > 0.0
          && Rng.float t.rng 1.0 < l.reorder_p
        then begin
          t.reorders <- t.reorders + 1;
          Net.Inject.Reorder l.reorder_delay
        end
        else Net.Inject.Pass
    | Rdma_move ->
        let stall = max (stall_remaining t sn) (stall_remaining t dn) in
        let d = l.extra_delay + stall in
        if d > Time.ns 0 then begin
          t.delays <- t.delays + 1;
          Net.Inject.Delay d
        end
        else Net.Inject.Pass

let install t =
  Net.Inject.set (fun ~point ~src ~dst ~bytes ->
      verdict t ~point ~src ~dst ~bytes)

let uninstall () = Net.Inject.clear ()

let drops t = t.drops
let delays t = t.delays
let dups t = t.dups
let reorders t = t.reorders
let corrupts t = t.corrupts
