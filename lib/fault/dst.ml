type result = { spec : Scenario.spec; outcome : Scenario.outcome }

let run_seed seed =
  let spec = Scenario.generate ~seed in
  { spec; outcome = Scenario.run spec }

let run_spec spec = { spec; outcome = Scenario.run spec }

(* The determinism fingerprint: every field that a re-run of the same
   seed must reproduce bit-for-bit. *)
let fingerprint (o : Scenario.outcome) =
  Format.asprintf
    "digest=%08lx trace=%d ops=%d drops=%d delays=%d dups=%d reorders=%d \
     corrupts=%d scrubbed=%d ok=%b [%a]"
    o.Scenario.fs_digest o.Scenario.trace_events o.Scenario.ops_logged
    o.Scenario.drops o.Scenario.delays o.Scenario.dups o.Scenario.reorders
    o.Scenario.corrupts o.Scenario.scrubbed
    (not (Scenario.failed o))
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ")
       Invariant.pp_violation)
    o.Scenario.violations

let deterministic ~seed =
  let a = run_seed seed and b = run_seed seed in
  fingerprint a.outcome = fingerprint b.outcome

(* Greedy structural shrinking of a failing scenario: repeatedly try to
   delete one fault from the plan, keeping any reduction that still
   fails; then try to shorten the workload.  Every candidate is a full
   deterministic re-run, so the final reproducer is known-failing, not
   merely suspected. *)
let shrink (r : result) =
  let runs = ref 0 in
  let still_fails spec =
    incr runs;
    Scenario.failed (Scenario.run spec)
  in
  let rec drop_faults (spec : Scenario.spec) =
    let candidates =
      List.map
        (fun plan -> { spec with Scenario.plan })
        (Plan.shrink spec.Scenario.plan)
    in
    match List.find_opt still_fails candidates with
    | Some smaller -> drop_faults smaller
    | None -> spec
  in
  let rec drop_ops (spec : Scenario.spec) =
    let n = spec.Scenario.ops_per_client in
    if n <= 4 then spec
    else
      let candidate = { spec with Scenario.ops_per_client = n / 2 } in
      if still_fails candidate then drop_ops candidate else spec
  in
  if not (Scenario.failed r.outcome) then (r, 0)
  else
    let spec = drop_ops (drop_faults r.spec) in
    ({ spec; outcome = Scenario.run spec }, !runs)

let report (r : result) =
  Format.asprintf
    "@[<v>minimal reproducer: seed=%d@,spec: %a@,outcome: %a@,\
     replay: Fault.Dst.run_spec { (Fault.Scenario.generate ~seed:%d) with \
     plan; ops_per_client = %d }@]"
    r.spec.Scenario.seed Scenario.pp_spec r.spec Scenario.pp_outcome
    r.outcome r.spec.Scenario.seed r.spec.Scenario.ops_per_client

(* Sweep a seed range; shrink the first failure found. *)
let sweep ~seeds =
  let failures = ref [] in
  List.iter
    (fun seed ->
      let r = run_seed seed in
      if Scenario.failed r.outcome then failures := r :: !failures)
    seeds;
  match List.rev !failures with
  | [] -> Ok (List.length seeds)
  | first :: _ as all ->
      let minimal, runs = shrink first in
      Error (List.map (fun r -> r.spec.Scenario.seed) all, minimal, runs)
