(** DST driver: seed replay, seed sweeps, and greedy shrinking to a
    minimal reproducer (the FoundationDB workflow: run many seeds,
    and when one fails, shrink the fault plan and workload while the
    failure persists, then print a replayable reproducer). *)

type result = { spec : Scenario.spec; outcome : Scenario.outcome }

val run_seed : int -> result
(** Generate and execute the scenario for a seed. *)

val run_spec : Scenario.spec -> result
(** Execute an explicit (possibly shrunk) scenario. *)

val fingerprint : Scenario.outcome -> string
(** Canonical string of everything a same-seed re-run must reproduce:
    digest, trace/op/drop/delay counts, and all violations. *)

val deterministic : seed:int -> bool
(** Run the seed twice in fresh engines; true iff the fingerprints are
    identical. *)

val shrink : result -> result * int
(** Greedily minimize a failing result: drop plan faults one at a time,
    then halve the workload, keeping every reduction that still fails.
    Returns the minimal result and how many candidate re-runs it cost.
    A non-failing input is returned unchanged with cost 0. *)

val report : result -> string
(** Human-readable minimal-reproducer report, including how to replay. *)

val sweep :
  seeds:int list ->
  (int, int list * result * int) Stdlib.result
(** Run every seed. [Ok n] if all [n] passed; otherwise
    [Error (failing_seeds, shrunk_first_failure, shrink_runs)]. *)
