open Sim

type fault =
  | Crash of { node : int; at : Time.t; restart_after : Time.t }
  | Node_death of { node : int; at : Time.t }
  | Stall of { node : int; at : Time.t; duration : Time.t }
  | Partition of { a : int; b : int; at : Time.t; heal_after : Time.t }
  | Link_delay of {
      a : int;
      b : int;
      at : Time.t;
      duration : Time.t;
      delay : Time.t;
    }
  | Link_drop of {
      a : int;
      b : int;
      at : Time.t;
      duration : Time.t;
      p : float;
    }
  | Link_dup of {
      a : int;
      b : int;
      at : Time.t;
      duration : Time.t;
      p : float;
    }
  | Link_reorder of {
      a : int;
      b : int;
      at : Time.t;
      duration : Time.t;
      p : float;
      delay : Time.t;
    }
  | Link_corrupt of {
      a : int;
      b : int;
      at : Time.t;
      duration : Time.t;
      p : float;
    }
  | Torn_tail of { node : int; at : Time.t }
  | Bit_rot of { node : int; at : Time.t; salt : int }

type t = fault list

let start_of = function
  | Crash { at; _ }
  | Node_death { at; _ }
  | Stall { at; _ }
  | Partition { at; _ }
  | Link_delay { at; _ }
  | Link_drop { at; _ }
  | Link_dup { at; _ }
  | Link_reorder { at; _ }
  | Link_corrupt { at; _ }
  | Torn_tail { at; _ }
  | Bit_rot { at; _ } ->
      at

let end_of = function
  | Crash { at; restart_after; _ } -> at + restart_after
  | Node_death { at; _ } -> at
  | Stall { at; duration; _ } -> at + duration
  | Partition { at; heal_after; _ } -> at + heal_after
  | Link_delay { at; duration; _ } -> at + duration
  | Link_drop { at; duration; _ } -> at + duration
  | Link_dup { at; duration; _ } -> at + duration
  | Link_reorder { at; duration; _ } -> at + duration
  | Link_corrupt { at; duration; _ } -> at + duration
  | Torn_tail { at; _ } -> at
  | Bit_rot { at; _ } -> at

let horizon t = List.fold_left (fun acc f -> max acc (end_of f)) (Time.ns 0) t

(* An unordered pair of distinct nodes; [b] strictly above [a] so the
   same physical link always gets the same key. *)
let pick_link rng ~nodes =
  let a = Rng.int rng nodes in
  let b = (a + 1 + Rng.int rng (nodes - 1)) mod nodes in
  (min a b, max a b)

let gen_fault rng ~nodes ~horizon =
  let frac f = Time.of_us_f (Time.to_us_f horizon *. f) in
  (* Start within the first 60% of the horizon so every fault has room
     to finish (restart / heal) well before the workload drain. *)
  let at = frac (Rng.float rng 0.6) in
  let dur () = frac (0.05 +. Rng.float rng 0.25) in
  match Rng.int rng 9 with
  | 0 ->
      (* The primary hosts every client's LibFS; crashing it would tear
         down the clients themselves, which is outside the recovery
         model (§3.6 covers NICFS fail-over, not client loss). *)
      let node = 1 + Rng.int rng (nodes - 1) in
      Crash { node; at; restart_after = dur () }
  | 1 ->
      let node = Rng.int rng nodes in
      Stall { node; at; duration = dur () }
  | 2 ->
      let a, b = pick_link rng ~nodes in
      Partition { a; b; at; heal_after = dur () }
  | 3 ->
      let a, b = pick_link rng ~nodes in
      let delay = Time.us (10 + Rng.int rng 490) in
      Link_delay { a; b; at; duration = dur (); delay }
  | 4 ->
      let a, b = pick_link rng ~nodes in
      let p = 0.05 +. Rng.float rng 0.6 in
      Link_drop { a; b; at; duration = dur (); p }
  | 5 ->
      let a, b = pick_link rng ~nodes in
      let p = 0.05 +. Rng.float rng 0.45 in
      Link_dup { a; b; at; duration = dur (); p }
  | 6 ->
      let a, b = pick_link rng ~nodes in
      let p = 0.05 +. Rng.float rng 0.45 in
      let delay = Time.us (10 + Rng.int rng 290) in
      Link_reorder { a; b; at; duration = dur (); p; delay }
  | 7 ->
      let a, b = pick_link rng ~nodes in
      let p = 0.05 +. Rng.float rng 0.45 in
      Link_corrupt { a; b; at; duration = dur (); p }
  | _ ->
      (* Storage faults target replicas: the primary's client logs are
         the durability root and their loss is outside the §3.6
         recovery model. *)
      let node = 1 + Rng.int rng (nodes - 1) in
      if Rng.bool rng then Torn_tail { node; at }
      else Bit_rot { node; at; salt = Rng.int rng 0x3FFFFFFF }

let generate ~rng ~nodes ~horizon =
  let n = 1 + Rng.int rng 4 in
  List.init n (fun _ -> gen_fault rng ~nodes ~horizon)
  |> List.sort (fun f g -> compare (start_of f) (start_of g))

(* Byzantine-fabric profile: only duplication, reordering, corruption
   and storage faults, at aggressive probabilities — the adversary
   sweep that exercises idempotent RPC, integrity trailers and the
   recovery scrub specifically. *)
let gen_adversary_fault rng ~nodes ~horizon =
  let frac f = Time.of_us_f (Time.to_us_f horizon *. f) in
  let at = frac (Rng.float rng 0.5) in
  let dur () = frac (0.15 +. Rng.float rng 0.35) in
  match Rng.int rng 5 with
  | 0 ->
      let a, b = pick_link rng ~nodes in
      Link_dup { a; b; at; duration = dur (); p = 0.2 +. Rng.float rng 0.5 }
  | 1 ->
      let a, b = pick_link rng ~nodes in
      Link_reorder
        {
          a;
          b;
          at;
          duration = dur ();
          p = 0.2 +. Rng.float rng 0.4;
          delay = Time.us (20 + Rng.int rng 240);
        }
  | 2 ->
      let a, b = pick_link rng ~nodes in
      Link_corrupt
        { a; b; at; duration = dur (); p = 0.1 +. Rng.float rng 0.4 }
  | 3 ->
      let node = 1 + Rng.int rng (nodes - 1) in
      Torn_tail { node; at }
  | _ ->
      let node = 1 + Rng.int rng (nodes - 1) in
      Bit_rot { node; at; salt = Rng.int rng 0x3FFFFFFF }

let generate_adversary ~rng ~nodes ~horizon =
  let n = 2 + Rng.int rng 3 in
  List.init n (fun _ -> gen_adversary_fault rng ~nodes ~horizon)
  |> List.sort (fun f g -> compare (start_of f) (start_of g))

(* ---- shrinking ----------------------------------------------------- *)

let time_floor = Time.us 50
let p_floor = 0.02

let half_time d = if d > time_floor then d / 2 else d
let half_p p = if p > p_floor then p /. 2.0 else p

(* One "all parameters halved" variant per fault, when that actually
   shrinks something: durations, extra delays and fault probabilities
   move toward zero, so minimal reproducers pin down not just which
   faults matter but how much of them. *)
let shrink_fault f =
  let smaller =
    match f with
    | Crash ({ restart_after; _ } as c) ->
        Some (Crash { c with restart_after = half_time restart_after })
    | Node_death _ -> None
    | Stall ({ duration; _ } as s) ->
        Some (Stall { s with duration = half_time duration })
    | Partition ({ heal_after; _ } as p) ->
        Some (Partition { p with heal_after = half_time heal_after })
    | Link_delay ({ duration; delay; _ } as l) ->
        Some
          (Link_delay
             { l with duration = half_time duration; delay = half_time delay })
    | Link_drop ({ duration; p; _ } as l) ->
        Some (Link_drop { l with duration = half_time duration; p = half_p p })
    | Link_dup ({ duration; p; _ } as l) ->
        Some (Link_dup { l with duration = half_time duration; p = half_p p })
    | Link_reorder ({ duration; p; delay; _ } as l) ->
        Some
          (Link_reorder
             {
               l with
               duration = half_time duration;
               p = half_p p;
               delay = half_time delay;
             })
    | Link_corrupt ({ duration; p; _ } as l) ->
        Some
          (Link_corrupt { l with duration = half_time duration; p = half_p p })
    | Torn_tail _ | Bit_rot _ -> None
  in
  match smaller with Some g when g <> f -> Some g | _ -> None

(* Greedy shrinking candidates: every plan obtained by deleting exactly
   one fault, then every plan obtained by halving one fault's
   parameters.  The DST driver keeps a candidate iff it still fails. *)
let shrink t =
  let dropped = List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) t) t in
  let halved =
    List.concat
      (List.mapi
         (fun i f ->
           match shrink_fault f with
           | None -> []
           | Some g -> [ List.mapi (fun j x -> if j = i then g else x) t ])
         t)
  in
  dropped @ halved

let pp_fault fmt = function
  | Crash { node; at; restart_after } ->
      Format.fprintf fmt "crash(node=%d at=%a restart_after=%a)" node Time.pp
        at Time.pp restart_after
  | Node_death { node; at } ->
      Format.fprintf fmt "node_death(node=%d at=%a)" node Time.pp at
  | Stall { node; at; duration } ->
      Format.fprintf fmt "stall(node=%d at=%a for=%a)" node Time.pp at Time.pp
        duration
  | Partition { a; b; at; heal_after } ->
      Format.fprintf fmt "partition(%d<->%d at=%a heal_after=%a)" a b Time.pp
        at Time.pp heal_after
  | Link_delay { a; b; at; duration; delay } ->
      Format.fprintf fmt "delay(%d<->%d at=%a for=%a +%a)" a b Time.pp at
        Time.pp duration Time.pp delay
  | Link_drop { a; b; at; duration; p } ->
      Format.fprintf fmt "drop(%d<->%d at=%a for=%a p=%.2f)" a b Time.pp at
        Time.pp duration p
  | Link_dup { a; b; at; duration; p } ->
      Format.fprintf fmt "dup(%d<->%d at=%a for=%a p=%.2f)" a b Time.pp at
        Time.pp duration p
  | Link_reorder { a; b; at; duration; p; delay } ->
      Format.fprintf fmt "reorder(%d<->%d at=%a for=%a p=%.2f +%a)" a b Time.pp
        at Time.pp duration p Time.pp delay
  | Link_corrupt { a; b; at; duration; p } ->
      Format.fprintf fmt "corrupt(%d<->%d at=%a for=%a p=%.2f)" a b Time.pp at
        Time.pp duration p
  | Torn_tail { node; at } ->
      Format.fprintf fmt "torn_tail(node=%d at=%a)" node Time.pp at
  | Bit_rot { node; at; salt } ->
      Format.fprintf fmt "bit_rot(node=%d at=%a salt=%#x)" node Time.pp at salt

let pp fmt t =
  Format.fprintf fmt "[@[<hov>%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ")
       pp_fault)
    t

let to_string t = Format.asprintf "%a" pp t
