open Sim

type fault =
  | Crash of { node : int; at : Time.t; restart_after : Time.t }
  | Node_death of { node : int; at : Time.t }
  | Stall of { node : int; at : Time.t; duration : Time.t }
  | Partition of { a : int; b : int; at : Time.t; heal_after : Time.t }
  | Link_delay of {
      a : int;
      b : int;
      at : Time.t;
      duration : Time.t;
      delay : Time.t;
    }
  | Link_drop of {
      a : int;
      b : int;
      at : Time.t;
      duration : Time.t;
      p : float;
    }

type t = fault list

let start_of = function
  | Crash { at; _ }
  | Node_death { at; _ }
  | Stall { at; _ }
  | Partition { at; _ }
  | Link_delay { at; _ }
  | Link_drop { at; _ } ->
      at

let end_of = function
  | Crash { at; restart_after; _ } -> at + restart_after
  | Node_death { at; _ } -> at
  | Stall { at; duration; _ } -> at + duration
  | Partition { at; heal_after; _ } -> at + heal_after
  | Link_delay { at; duration; _ } -> at + duration
  | Link_drop { at; duration; _ } -> at + duration

let horizon t = List.fold_left (fun acc f -> max acc (end_of f)) (Time.ns 0) t

(* An unordered pair of distinct nodes; [b] strictly above [a] so the
   same physical link always gets the same key. *)
let pick_link rng ~nodes =
  let a = Rng.int rng nodes in
  let b = (a + 1 + Rng.int rng (nodes - 1)) mod nodes in
  (min a b, max a b)

let gen_fault rng ~nodes ~horizon =
  let frac f = Time.of_us_f (Time.to_us_f horizon *. f) in
  (* Start within the first 60% of the horizon so every fault has room
     to finish (restart / heal) well before the workload drain. *)
  let at = frac (Rng.float rng 0.6) in
  let dur () = frac (0.05 +. Rng.float rng 0.25) in
  match Rng.int rng 5 with
  | 0 ->
      (* The primary hosts every client's LibFS; crashing it would tear
         down the clients themselves, which is outside the recovery
         model (§3.6 covers NICFS fail-over, not client loss). *)
      let node = 1 + Rng.int rng (nodes - 1) in
      Crash { node; at; restart_after = dur () }
  | 1 ->
      let node = Rng.int rng nodes in
      Stall { node; at; duration = dur () }
  | 2 ->
      let a, b = pick_link rng ~nodes in
      Partition { a; b; at; heal_after = dur () }
  | 3 ->
      let a, b = pick_link rng ~nodes in
      let delay = Time.us (10 + Rng.int rng 490) in
      Link_delay { a; b; at; duration = dur (); delay }
  | _ ->
      let a, b = pick_link rng ~nodes in
      let p = 0.05 +. Rng.float rng 0.6 in
      Link_drop { a; b; at; duration = dur (); p }

let generate ~rng ~nodes ~horizon =
  let n = 1 + Rng.int rng 4 in
  List.init n (fun _ -> gen_fault rng ~nodes ~horizon)
  |> List.sort (fun f g -> compare (start_of f) (start_of g))

(* Greedy shrinking candidates: every plan obtained by deleting exactly
   one fault.  The DST driver keeps a candidate iff it still fails. *)
let shrink t =
  List.mapi
    (fun i _ -> List.filteri (fun j _ -> j <> i) t)
    t

let pp_fault fmt = function
  | Crash { node; at; restart_after } ->
      Format.fprintf fmt "crash(node=%d at=%a restart_after=%a)" node Time.pp
        at Time.pp restart_after
  | Node_death { node; at } ->
      Format.fprintf fmt "node_death(node=%d at=%a)" node Time.pp at
  | Stall { node; at; duration } ->
      Format.fprintf fmt "stall(node=%d at=%a for=%a)" node Time.pp at Time.pp
        duration
  | Partition { a; b; at; heal_after } ->
      Format.fprintf fmt "partition(%d<->%d at=%a heal_after=%a)" a b Time.pp
        at Time.pp heal_after
  | Link_delay { a; b; at; duration; delay } ->
      Format.fprintf fmt "delay(%d<->%d at=%a for=%a +%a)" a b Time.pp at
        Time.pp duration Time.pp delay
  | Link_drop { a; b; at; duration; p } ->
      Format.fprintf fmt "drop(%d<->%d at=%a for=%a p=%.2f)" a b Time.pp at
        Time.pp duration p

let pp fmt t =
  Format.fprintf fmt "[@[<hov>%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ";@ ")
       pp_fault)
    t

let to_string t = Format.asprintf "%a" pp t
