open Sim
module D = Linefs.Deployment
module Nicfs = Linefs.Nicfs
module Libfs = Linefs.Libfs
module Lease = Linefs.Lease
module Oplog = Storage.Oplog
module Data = Storage.Data

type spec = {
  seed : int;
  nodes : int;
  clients : int;
  ops_per_client : int;
  horizon : Time.t;
  plan : Plan.t;
}

type outcome = {
  completed : bool;
  violations : Invariant.violation list;
  fs_digest : int32;
  trace_events : int;
  ops_logged : int;
  drops : int;
  delays : int;
  dups : int;
  reorders : int;
  corrupts : int;
  scrubbed : int;
}

let failed o = (not o.completed) || o.violations <> []

let pp_spec fmt s =
  Format.fprintf fmt
    "seed=%d nodes=%d clients=%d ops/client=%d horizon=%a plan=%a" s.seed
    s.nodes s.clients s.ops_per_client Time.pp s.horizon Plan.pp s.plan

let pp_outcome fmt o =
  Format.fprintf fmt
    "%s: digest=%08lx trace=%d ops=%d drops=%d delays=%d dups=%d \
     reorders=%d corrupts=%d scrubbed=%d violations=%d"
    (if o.completed then "completed" else "WEDGED")
    o.fs_digest o.trace_events o.ops_logged o.drops o.delays o.dups
    o.reorders o.corrupts o.scrubbed
    (List.length o.violations);
  List.iter
    (fun v -> Format.fprintf fmt "@\n  %a" Invariant.pp_violation v)
    o.violations

let generate ~seed =
  let rng = Rng.create seed in
  let nodes = 3 in
  let horizon = Time.ms 20 in
  let clients = 1 + Rng.int rng 2 in
  let ops_per_client = 25 + Rng.int rng 40 in
  let plan = Plan.generate ~rng ~nodes ~horizon in
  { seed; nodes; clients; ops_per_client; horizon; plan }

(* Byzantine-fabric adversary: same workload shape, but the plan draws
   only duplication / reordering / corruption / storage faults at
   aggressive probabilities — the profile the CI adversary sweep runs
   against the idempotence, integrity and scrub machinery. *)
let generate_adversary ~seed =
  let rng = Rng.create seed in
  let nodes = 3 in
  let horizon = Time.ms 20 in
  let clients = 1 + Rng.int rng 2 in
  let ops_per_client = 25 + Rng.int rng 40 in
  let plan = Plan.generate_adversary ~rng ~nodes ~horizon in
  { seed; nodes; clients; ops_per_client; horizon; plan }

(* Explicit failover scenarios (not seed-generated: generated plans
   never touch node 0 and always heal).  These drive the degraded-mode
   machinery end to end: NIC-crash-to-host-fallback on the primary,
   a second crash landing mid-fail-back, permanent replica death with
   chain reconfiguration, and a concurrent crash + death. *)

let failover_base ~seed ~plan =
  { seed; nodes = 3; clients = 2; ops_per_client = 30;
    horizon = Time.ms 20; plan }

let failover_primary_crash ~seed =
  failover_base ~seed
    ~plan:
      [ Plan.Crash { node = 0; at = Time.ms 4; restart_after = Time.ms 8 } ]

let failover_crash_during_failback ~seed =
  failover_base ~seed
    ~plan:
      [
        Plan.Crash { node = 0; at = Time.ms 4; restart_after = Time.ms 5 };
        Plan.Crash { node = 0; at = Time.ms 10; restart_after = Time.ms 5 };
      ]

let failover_replica_death ~seed =
  failover_base ~seed
    ~plan:[ Plan.Node_death { node = 2; at = Time.ms 5 } ]

let failover_double_failure ~seed =
  failover_base ~seed
    ~plan:
      [
        Plan.Crash { node = 1; at = Time.ms 4; restart_after = Time.ms 8 };
        Plan.Node_death { node = 2; at = Time.ms 6 };
      ]

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

(* Set DST_DEBUG=1 to stream the fault/service-transition timeline of
   a scenario to stderr — the first tool to reach for when a seed
   wedges or crashes. *)
let dst_debug = Sys.getenv_opt "DST_DEBUG" <> None

let sleep_until at =
  let now = Engine.now () in
  if at > now then Engine.sleep (at - now)

(* One client process issuing a random stream of operations over a
   private namespace (/c<id>_f<n>).  Namespaces are disjoint across
   clients so every pair of cross-client operations commutes — replicas
   may interleave different clients' chunks differently, and the
   convergence check relies on commutativity.  Clients still contend on
   the shared root directory's write lease for every namespace op. *)
let client_proc ~rng ~spec ~cid (ops : Linefs.Dfs_intf.ops) =
  let file n = Printf.sprintf "/c%d_f%d" cid n in
  let nfiles = 4 in
  let gap_us =
    max 1 (Time.to_us_f spec.horizon /. float_of_int spec.ops_per_client
          |> int_of_float)
  in
  let payload () =
    let len = 64 + Rng.int rng 2048 in
    let b = Bytes.create len in
    Rng.fill_bytes rng b;
    Data.real b
  in
  let create_or_open path =
    try ops.Linefs.Dfs_intf.create path
    with Linefs.Dfs_intf.Fs_error _ -> ops.Linefs.Dfs_intf.open_file path
  in
  for _ = 1 to spec.ops_per_client do
    (try
       match Rng.int rng 10 with
       | 0 | 1 | 2 | 3 ->
           let fd = create_or_open (file (Rng.int rng nfiles)) in
           ops.Linefs.Dfs_intf.write fd ~pos:(Rng.int rng 4096) (payload ());
           ops.Linefs.Dfs_intf.close fd
       | 4 | 5 ->
           let fd = create_or_open (file (Rng.int rng nfiles)) in
           ops.Linefs.Dfs_intf.append fd (payload ());
           ops.Linefs.Dfs_intf.close fd
       | 6 ->
           let fd = create_or_open (file (Rng.int rng nfiles)) in
           ops.Linefs.Dfs_intf.write fd ~pos:0 (payload ());
           ops.Linefs.Dfs_intf.fsync fd;
           ops.Linefs.Dfs_intf.close fd
       | 7 ->
           ops.Linefs.Dfs_intf.rename
             (file (Rng.int rng nfiles))
             (file (Rng.int rng nfiles))
       | 8 -> ops.Linefs.Dfs_intf.unlink (file (Rng.int rng nfiles))
       | _ -> (
           match ops.Linefs.Dfs_intf.file_size (file (Rng.int rng nfiles)) with
           | Some sz when sz > 0 ->
               let fd = ops.Linefs.Dfs_intf.open_file (file 0) in
               ignore
                 (ops.Linefs.Dfs_intf.read fd ~pos:0 ~len:(min sz 512)
                   : Data.t);
               ops.Linefs.Dfs_intf.close fd
           | _ -> ())
     with Linefs.Dfs_intf.Fs_error _ -> ());
    Engine.sleep (Time.us (1 + Rng.int rng (2 * gap_us)))
  done

(* ------------------------------------------------------------------ *)
(* Fault drivers                                                       *)
(* ------------------------------------------------------------------ *)

let note trace fmt =
  Format.kasprintf
    (fun s ->
      if dst_debug then
        Printf.eprintf "[%s] %s\n%!" (Time.to_string (Engine.now ())) s;
      Trace.add trace (Trace.Fault s))
    fmt

let fault_proc trace net (dep : D.t) (f : Plan.fault) =
  match f with
  | Plan.Crash { node; at; restart_after } ->
      sleep_until at;
      note trace "crash node %d" node;
      Nicfs.crash (D.node dep node).D.nicfs;
      Engine.sleep restart_after;
      note trace "restart node %d" node;
      Nicfs.restart (D.node dep node).D.nicfs
  | Plan.Node_death { node; at } ->
      sleep_until at;
      note trace "node death %d" node;
      (* Host dies too: the kworker stops answering the manager's host
         probe (so the node classifies Down, not HostFallback) and the
         host-side fault domain is killed along with the NIC's. *)
      Linefs.Kworker.crash (D.node dep node).D.kworker;
      Nicfs.kill_node (D.node dep node).D.nicfs
  | Plan.Stall { node; at; duration } ->
      sleep_until at;
      note trace "stall node %d" node;
      Netfault.set_stall net ~node ~until:(Engine.now () + duration);
      Engine.sleep duration;
      note trace "stall over node %d" node;
      Netfault.clear_stall net ~node
  | Plan.Partition { a; b; at; heal_after } ->
      sleep_until at;
      note trace "partition %d<->%d" a b;
      Netfault.set_partition net ~a ~b true;
      Engine.sleep heal_after;
      note trace "heal %d<->%d" a b;
      Netfault.set_partition net ~a ~b false
  | Plan.Link_delay { a; b; at; duration; delay } ->
      sleep_until at;
      note trace "delay %d<->%d +%s" a b (Time.to_string delay);
      Netfault.set_delay net ~a ~b delay;
      Engine.sleep duration;
      note trace "delay over %d<->%d" a b;
      Netfault.set_delay net ~a ~b (Time.ns 0)
  | Plan.Link_drop { a; b; at; duration; p } ->
      sleep_until at;
      note trace "drop %d<->%d p=%.2f" a b p;
      Netfault.set_drop net ~a ~b p;
      Engine.sleep duration;
      note trace "drop over %d<->%d" a b;
      Netfault.set_drop net ~a ~b 0.0
  | Plan.Link_dup { a; b; at; duration; p } ->
      sleep_until at;
      note trace "dup %d<->%d p=%.2f" a b p;
      Netfault.set_dup net ~a ~b p;
      Engine.sleep duration;
      note trace "dup over %d<->%d" a b;
      Netfault.set_dup net ~a ~b 0.0
  | Plan.Link_reorder { a; b; at; duration; p; delay } ->
      sleep_until at;
      note trace "reorder %d<->%d p=%.2f +%s" a b p (Time.to_string delay);
      Netfault.set_reorder net ~a ~b ~p ~delay;
      Engine.sleep duration;
      note trace "reorder over %d<->%d" a b;
      Netfault.set_reorder net ~a ~b ~p:0.0 ~delay:(Time.ns 0)
  | Plan.Link_corrupt { a; b; at; duration; p } ->
      sleep_until at;
      note trace "corrupt %d<->%d p=%.2f" a b p;
      Netfault.set_corrupt net ~a ~b p;
      Engine.sleep duration;
      note trace "corrupt over %d<->%d" a b;
      Netfault.set_corrupt net ~a ~b 0.0
  | Plan.Torn_tail { node; at } ->
      sleep_until at;
      note trace "torn tail node %d" node;
      (* The next record the node's publication gate dequeues turns out
         torn: dropped unpublished, then re-fetched from its primary. *)
      Nicfs.mark_torn (D.node dep node).D.nicfs
  | Plan.Bit_rot { node; at; salt } ->
      sleep_until at;
      (match
         Storage.Fs_state.tamper (D.node dep node).D.fs ~salt
       with
      | Some inum -> note trace "bit rot node %d inum %d" node inum
      | None -> note trace "bit rot node %d (no file to damage)" node)

let drive_fault = fault_proc

let crashed_nodes plan =
  List.filter_map
    (function Plan.Crash { node; _ } -> Some node | _ -> None)
    plan
  |> List.sort_uniq compare

let dead_nodes plan =
  List.filter_map
    (function Plan.Node_death { node; _ } -> Some node | _ -> None)
    plan
  |> List.sort_uniq compare

let bitrot_nodes plan =
  List.filter_map
    (function Plan.Bit_rot { node; _ } -> Some node | _ -> None)
    plan
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Scenario execution                                                  *)
(* ------------------------------------------------------------------ *)

(* Build one scenario on [eng] (the root process installs the fault
   hook and observers from inside the engine, so they are engine-local
   and scenarios can run as parallel shards), returning the finisher
   that computes the outcome once the engine has been driven. *)
let prepare (spec : spec) eng =
  let trace = Trace.create () in
  let histories : (int, Oplog.entry list ref) Hashtbl.t = Hashtbl.create 4 in
  let net = Netfault.create ~rng:(Rng.create (spec.seed lxor 0x6e6574)) in
  let completed = ref false in
  let dep_ref = ref None in
  Engine.spawn_root ~name:"dst-scenario" eng (fun () ->
      let params =
        {
          Linefs.Params.default with
          Linefs.Params.chunk_bytes = 32 * 1024;
          repl_retry_timeout = Time.ms 2;
        }
      in
      let dep =
        D.create ~params ~apply_on_publish:true ~nodes:spec.nodes ()
      in
      dep_ref := Some dep;
      let mgr =
        Cluster.Manager.create ~heartbeat_interval:(Time.ms 1) ()
      in
      let clients_ref = ref [] in
      for i = 0 to D.node_count dep - 1 do
        let rt = D.node dep i in
        Cluster.Manager.register mgr ~id:i
          ~ping:(fun () -> Nicfs.ping rt.D.nicfs)
          ~on_epoch:(fun e ->
            Trace.add trace (Trace.Epoch e);
            Nicfs.set_epoch rt.D.nicfs e)
          ~ping_host:(fun () -> Linefs.Kworker.alive rt.D.kworker)
          ~on_service:(fun svc ->
            (* Failover driver: the manager's service map is the one
               source of truth.  NIC-dead-host-alive brings the host
               fallback up, full recovery fails back, and every
               transition rewires the replication chain over the
               usable nodes and re-kicks the clients (kicks queued at
               a dead plane are lost). *)
            (match svc with
            | Cluster.Manager.Nic ->
                note trace "service node %d: nic" i;
                Nicfs.exit_fallback rt.D.nicfs
            | Cluster.Manager.HostFallback ->
                note trace "service node %d: host-fallback" i;
                Nicfs.enter_fallback rt.D.nicfs
            | Cluster.Manager.Down -> note trace "service node %d: down" i);
            D.rebuild_chain dep ~up:(fun j ->
                Cluster.Manager.service mgr j <> Cluster.Manager.Down);
            List.iter Libfs.note_service_change !clients_ref)
          ()
      done;
      Cluster.Manager.start mgr;
      Netfault.install net;
      Lease.set_observer (fun ev -> Trace.add trace (Trace.Lease ev));
      Libfs.set_entry_observer (fun ~client e ->
          let h =
            match Hashtbl.find_opt histories client with
            | Some h -> h
            | None ->
                let h = ref [] in
                Hashtbl.replace histories client h;
                h
          in
          h := e :: !h);
      let clients =
        List.init spec.clients (fun i -> D.add_client dep ~id:i)
      in
      clients_ref := clients;
      List.iter
        (fun f -> Engine.spawn ~name:"dst-fault" (fun () ->
             fault_proc trace net dep f))
        spec.plan;
      let done_ivs =
        List.mapi
          (fun i c ->
            let iv = Ivar.create () in
            let rng = Rng.create (spec.seed + (1000 * (i + 1))) in
            Engine.spawn ~name:(Printf.sprintf "dst-client%d" i) (fun () ->
                client_proc ~rng ~spec ~cid:i (Libfs.ops c);
                Ivar.fill iv ());
            iv)
          clients
      in
      List.iter Ivar.read done_ivs;
      (* Let the fault plan fully play out (restarts, heals). *)
      sleep_until (Plan.horizon spec.plan + Time.ms 1);
      (* Recover every node that crashed (not the permanently dead):
         re-register with the manager and pull missed inodes from the
         lowest-id usable peer — the primary itself may be the node
         recovering. *)
      List.iter
        (fun n ->
          let source_id =
            let rec go i =
              if i >= D.node_count dep then 0
              else if
                i <> n
                && Cluster.Manager.service mgr i <> Cluster.Manager.Down
              then i
              else go (i + 1)
            in
            go 0
          in
          let stats =
            Linefs.Recovery.run ~manager:mgr
              ~recovering:(D.node dep n).D.nicfs
              ~source:(D.node dep source_id).D.nicfs ()
          in
          note trace "recovered node %d (epochs %d->%d, %d inodes)" n
            stats.Linefs.Recovery.from_epoch stats.Linefs.Recovery.to_epoch
            stats.Linefs.Recovery.inodes_resynced)
        (crashed_nodes spec.plan);
      (* Drain all pipelines; retransmission pushes anything lost during
         the fault window through the healed chain. *)
      D.flush_all dep;
      (* Recovery-time integrity scrub of bit-rotted replicas: stream
         CRCs against the primary and re-fetch damaged inodes. *)
      List.iter
        (fun n ->
          if not (List.mem n (dead_nodes spec.plan)) then begin
            let repaired =
              Linefs.Recovery.scrub
                ~recovering:(D.node dep n).D.nicfs
                ~source:(D.primary dep).D.nicfs
            in
            note trace "scrubbed node %d (%d inodes repaired)" n repaired
          end)
        (bitrot_nodes spec.plan);
      Cluster.Manager.stop mgr;
      D.stop dep;
      completed := true);
  fun sim_crash ->
  let histories =
    Hashtbl.fold (fun c h acc -> (c, List.rev !h) :: acc) histories []
    |> List.sort compare
  in
  let ops_logged =
    List.fold_left (fun acc (_, es) -> acc + List.length es) 0 histories
  in
  let violations, fs_digest =
    match !dep_ref with
    | None -> ([ { Invariant.name = "setup"; detail = "deployment never built" } ], 0l)
    | Some dep ->
        let prim = (D.primary dep).D.fs in
        let dead = dead_nodes spec.plan in
        (* Convergence is asserted over the surviving replica set: a
           permanently dead node keeps whatever prefix it had. *)
        let reps =
          List.filter_map
            (fun (rt : D.node_rt) ->
              let id = rt.D.node.Hw.Node.id in
              if List.mem id dead then None else Some (id, rt.D.fs))
            (D.replicas dep)
        in
        let journals =
          List.filter_map
            (fun (rt : D.node_rt) ->
              let id = rt.D.node.Hw.Node.id in
              if List.mem id dead then None
              else Some (id, Nicfs.apply_journal rt.D.nicfs))
            (D.replicas dep)
        in
        let vs =
          Invariant.check_prefix_consistency ~histories
          @ Invariant.check_single_writer trace
          @ Invariant.check_no_duplicate_apply ~journals
          @ (if !completed then Invariant.check_convergence ~primary:prim ~replicas:reps
             else [])
        in
        (vs, Storage.Fs_state.digest prim)
  in
  let violations =
    match sim_crash with
    | Some msg ->
        { Invariant.name = "sim-crash"; detail = msg } :: violations
    | None ->
        if !completed then violations
        else
          { Invariant.name = "wedged";
            detail = "scenario did not complete before the deadline" }
          :: violations
  in
  {
    completed = !completed;
    violations;
    fs_digest;
    trace_events = Trace.count trace;
    ops_logged;
    drops = Netfault.drops net;
    delays = Netfault.delays net;
    dups = Netfault.dups net;
    reorders = Netfault.reorders net;
    corrupts = Netfault.corrupts net;
    scrubbed =
      (* The daemons bumped their counters while running on [eng], so
         the evidence sits in that engine's local table. *)
      Counters.get_in eng "storage.scrub-refetch"
      + Counters.get_in eng "storage.bitrot-repair";
  }

(* Deadline rationale: a correct system finishes well inside 30 virtual
   seconds; hitting it means the scenario wedged, which the checker
   reports.  A crash inside the simulation (a failwith in some daemon)
   is itself a finding, not a harness error — captured as a
   violation. *)
let scenario_deadline = Time.sec 30

let run (spec : spec) =
  let eng = Engine.create ~seed:spec.seed () in
  Counters.reset ();
  let finish = prepare spec eng in
  let sim_crash =
    match Engine.run ~deadline:scenario_deadline eng with
    | () -> None
    | exception e -> Some (Printexc.to_string e)
  in
  finish sim_crash

let run_batch ?(domains = 1) specs =
  match specs with
  | [] -> []
  | _ ->
      let specs = Array.of_list specs in
      let n = Array.length specs in
      Counters.reset ();
      (* Edge-less shards: the scenarios are independent, so every
         shard runs unconstrained with exactly [Engine.run ~deadline]
         semantics — outcomes are identical to sequential {!run} calls
         for every domain count.  [seed_of] gives each shard's engine
         the very seed a sequential run would have used. *)
      let sh =
        Sharded.create ~seed_of:(fun i -> specs.(i).seed) ~shards:n ()
      in
      let finishers =
        Array.mapi (fun i spec -> prepare spec (Sharded.engine sh i)) specs
      in
      Sharded.run ~domains ~deadline:scenario_deadline ~keep_going:true sh;
      let errs = Sharded.errors sh in
      Array.to_list
        (Array.mapi
           (fun i finish ->
             finish
               (match List.assoc_opt i errs with
               | Some e -> Some (Printexc.to_string e)
               | None -> None))
           finishers)
